// Tests for the host reference solver stack and the platform models.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/cpu_solver.hpp"
#include "baseline/platform.hpp"
#include "matrix/generators.hpp"
#include "support/rng.hpp"

using namespace graphene;
using namespace graphene::baseline;

TEST(HostIlu, ExactForTriangularProduct) {
  // For a matrix that IS the product of unit-lower and upper triangular
  // factors with no dropped fill, ILU(0) is exact: solve(A x) == x.
  auto g = matrix::poisson2d5(10, 10);
  HostIlu0 ilu(g.matrix);
  Rng rng(5);
  std::vector<double> x(g.matrix.rows()), r(x.size()), z(x.size());
  for (double& v : x) v = rng.uniform(-1, 1);
  // r = M x where M = L*U is close to A; applying solve must approximately
  // invert A (quality check: residual drops by a large factor).
  g.matrix.spmv(x, r);
  ilu.solve(r, z);
  double errNum = 0, errDen = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    errNum += (z[i] - x[i]) * (z[i] - x[i]);
    errDen += x[i] * x[i];
  }
  EXPECT_LT(std::sqrt(errNum / errDen), 0.6);  // strong approximate inverse
}

TEST(HostBiCgStab, ConvergesWithAndWithoutIlu) {
  auto g = matrix::afShellLike(2500);
  Rng rng(11);
  std::vector<double> b(g.matrix.rows());
  for (double& v : b) v = rng.uniform(-1, 1);

  auto plain = hostBiCgStab(g.matrix, b, 1e-9, 4000, false);
  auto ilu = hostBiCgStab(g.matrix, b, 1e-9, 4000, true);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(ilu.converged);
  // Global ILU(0) must cut iterations substantially (§VI-D discussion).
  EXPECT_LT(ilu.iterations * 2, plain.iterations);
  EXPECT_GT(plain.seconds, 0.0);
}

TEST(HostBiCgStab, ResidualHistoryDecreases) {
  auto g = matrix::poisson2d5(24, 24);
  std::vector<double> b(g.matrix.rows(), 1.0);
  auto r = hostBiCgStab(g.matrix, b, 1e-10, 2000, true);
  ASSERT_TRUE(r.converged);
  EXPECT_LE(r.residualHistory.back(), 1e-10);
}

TEST(HostSpmv, MeasurementIsPositiveAndScales) {
  auto small = matrix::poisson2d5(20, 20);
  auto large = matrix::poisson2d5(80, 80);
  double tSmall = measureHostSpmvSeconds(small.matrix, 5, 50);
  double tLarge = measureHostSpmvSeconds(large.matrix, 5, 50);
  EXPECT_GT(tSmall, 0.0);
  EXPECT_GT(tLarge, tSmall);  // 16x the work
}

TEST(PlatformModel, SpmvIsBandwidthBoundAndOrdersCorrectly) {
  const std::size_t rows = 1'600'000, nnz = 7'700'000;  // G3_circuit scale
  double cpu = spmvSeconds(xeon8470q(), rows, nnz);
  double gpu = spmvSeconds(h100Sxm(), rows, nnz);
  EXPECT_GT(cpu, gpu);           // H100 has ~10x the bandwidth
  EXPECT_GT(cpu / gpu, 5.0);
  EXPECT_LT(cpu / gpu, 20.0);
}

TEST(PlatformModel, GpuTriSolvePaysLevelLaunches) {
  // With many levels the GPU's per-level kernel launches dominate and the
  // CPU becomes the faster tri-solver — the §VI-D effect.
  const std::size_t rows = 500'000, nnz = 17'600'000;
  const std::size_t levels = 700;
  double cpu = triSolveSeconds(xeon8470q(), rows, nnz, levels);
  double gpu = triSolveSeconds(h100Sxm(), rows, nnz, levels);
  EXPECT_GT(gpu, cpu);
  // Without levels (levels=1) the GPU wins again.
  EXPECT_LT(triSolveSeconds(h100Sxm(), rows, nnz, 1),
            triSolveSeconds(xeon8470q(), rows, nnz, 1));
}

TEST(PlatformModel, EnergyUsesBoardPower) {
  EXPECT_DOUBLE_EQ(energyJoules(h100Sxm(), 2.0), 1400.0);
  EXPECT_DOUBLE_EQ(energyJoules(m2000(), 1.0), 420.0);
}

TEST(HostCg, ConvergesAndBeatsUnpreconditioned) {
  auto g = matrix::geoLike(2000, 3, 100.0);
  Rng rng(21);
  std::vector<double> b(g.matrix.rows());
  for (double& v : b) v = rng.uniform(-1, 1);
  auto plain = hostCg(g.matrix, b, 1e-9, 3000, false);
  auto ilu = hostCg(g.matrix, b, 1e-9, 3000, true);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(ilu.converged);
  EXPECT_LT(ilu.iterations, plain.iterations);
}

TEST(HostCg, AgreesWithBiCgStabSolution) {
  auto g = matrix::poisson2d5(20, 20);
  std::vector<double> b(g.matrix.rows(), 1.0);
  auto cg = hostCg(g.matrix, b, 1e-12, 2000, true);
  auto bicg = hostBiCgStab(g.matrix, b, 1e-12, 2000, true);
  EXPECT_TRUE(cg.converged);
  EXPECT_TRUE(bicg.converged);
  // CG does one SpMV + one preconditioner apply per iteration; BiCGStab two
  // of each — comparable iteration counts on SPD systems.
  EXPECT_LT(cg.iterations, 3 * bicg.iterations);
}

TEST(HostGaussSeidel, ConvergesOnDiagonallyDominant) {
  auto g = matrix::poisson2d5(16, 16);
  std::vector<double> b(g.matrix.rows(), 1.0);
  auto r = hostGaussSeidel(g.matrix, b, 1e-8, 5000);
  EXPECT_TRUE(r.converged);
  // Monotone decreasing residual for this SPD system.
  for (std::size_t i = 1; i < r.residualHistory.size(); ++i) {
    EXPECT_LE(r.residualHistory[i], r.residualHistory[i - 1] * 1.0001);
  }
}
