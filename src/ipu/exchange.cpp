#include "ipu/exchange.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"
#include "support/tile_profile.hpp"

namespace graphene::ipu {

ExchangeStats priceExchange(const IpuTarget& target,
                            const std::vector<Transfer>& transfers,
                            support::TileTrafficMatrix* traffic,
                            const LinkFaults* linkFaults) {
  ExchangeStats stats;
  if (transfers.empty()) return stats;
  if (linkFaults != nullptr && linkFaults->empty()) linkFaults = nullptr;

  const std::size_t nTiles = target.totalTiles();
  std::vector<double> sendBytes(nTiles, 0.0);
  std::vector<double> recvBytes(nTiles, 0.0);
  std::vector<std::size_t> instrs(nTiles, 0);
  // Bytes and message count crossing each ordered (srcIpu, dstIpu) link.
  struct LinkLoad {
    double bytes = 0;
    std::size_t messages = 0;
  };
  std::map<std::pair<std::size_t, std::size_t>, LinkLoad> linkLoad;

  auto chargeLink = [&](std::size_t fromIpu, std::size_t toIpu,
                        std::size_t bytes) {
    LinkLoad& load = linkLoad[{fromIpu, toIpu}];
    load.bytes += static_cast<double>(bytes);
    load.messages += 1;
    stats.interIpuBytes += bytes;
  };
  // Lowest-numbered surviving chip that bridges a severed ordered pair with
  // two alive hops. Dead chips cannot relay. Deterministic by construction,
  // so re-routed pricing stays bit-identical across host thread counts.
  auto findRelay = [&](std::size_t fromIpu, std::size_t toIpu) {
    for (std::size_t mid = 0; mid < target.numIpus; ++mid) {
      if (mid == fromIpu || mid == toIpu) continue;
      if (linkFaults->ipuDead(mid)) continue;
      if (linkFaults->isDead(fromIpu, mid) || linkFaults->isDead(mid, toIpu)) {
        continue;
      }
      return mid;
    }
    throw LinkPartitionedError(detail::concatMessage(
        "IPU-Link graph is partitioned: link ", fromIpu, "->", toIpu,
        " is severed and no surviving chip offers an alive two-hop route"));
  };

  for (const Transfer& t : transfers) {
    GRAPHENE_CHECK(t.srcTile < nTiles, "transfer source tile out of range");
    const std::size_t srcIpu = target.ipuOfTile(t.srcTile);
    bool remoteDst = false;
    // Which IPUs need the payload over a link (once per destination IPU —
    // the gateway fans out on the remote chip).
    std::vector<bool> ipuSeen(target.numIpus, false);
    for (std::size_t dst : t.dstTiles) {
      GRAPHENE_CHECK(dst < nTiles, "transfer destination tile out of range");
      if (dst == t.srcTile) continue;  // tile-local copy
      remoteDst = true;
      recvBytes[dst] += static_cast<double>(t.bytes);
      const std::size_t dstIpu = target.ipuOfTile(dst);
      if (dstIpu != srcIpu && !ipuSeen[dstIpu]) {
        ipuSeen[dstIpu] = true;
        stats.crossesIpus = true;
        if (linkFaults == nullptr || !linkFaults->isDead(srcIpu, dstIpu)) {
          chargeLink(srcIpu, dstIpu, t.bytes);
        } else {
          // Severed link: the payload detours via a surviving chip. Both
          // hops are real streams — charged, and congesting their lanes.
          const std::size_t relay = findRelay(srcIpu, dstIpu);
          chargeLink(srcIpu, relay, t.bytes);
          chargeLink(relay, dstIpu, t.bytes);
        }
      }
    }
    if (!remoteDst) continue;  // purely local
    // Broadcast: the source serialises the payload once regardless of the
    // number of on-chip destinations.
    sendBytes[t.srcTile] += static_cast<double>(t.bytes);
    instrs[t.srcTile] += 1;
    stats.instructions += 1;
    stats.totalBytes += t.bytes;
    if (traffic != nullptr) {
      traffic->recordTransfer(t.srcTile, t.dstTiles, t.bytes);
    }
  }

  double maxSendCycles = 0;
  double maxRecvCycles = 0;
  double maxInstr = 0;
  for (std::size_t i = 0; i < nTiles; ++i) {
    maxSendCycles = std::max(maxSendCycles,
                             sendBytes[i] / target.exchangeSendBytesPerCycle);
    maxRecvCycles = std::max(maxRecvCycles,
                             recvBytes[i] / target.exchangeRecvBytesPerCycle);
    maxInstr = std::max(maxInstr, static_cast<double>(instrs[i]));
  }

  // Link phase. Each active (srcIpu, dstIpu) pair is one stream: with halo
  // aggregation every message between the pair coalesces into a single link
  // transfer (one latency charge); otherwise each crossing message pays the
  // latency. A chip drives at most `linksPerIpu` lanes concurrently, so when
  // a superstep talks to more peers than that, its streams serialise onto
  // the available lanes; the slowest chip (out- or in-bound) sets the phase.
  std::vector<double> ipuOutSum(target.numIpus, 0.0);
  std::vector<double> ipuOutMax(target.numIpus, 0.0);
  std::vector<std::size_t> ipuOutPairs(target.numIpus, 0);
  std::vector<double> ipuInSum(target.numIpus, 0.0);
  std::vector<double> ipuInMax(target.numIpus, 0.0);
  std::vector<std::size_t> ipuInPairs(target.numIpus, 0);
  for (const auto& [pair, load] : linkLoad) {
    const std::size_t messages =
        target.aggregateInterIpuHalo ? 1 : load.messages;
    stats.interIpuMessages += messages;
    double pairCycles =
        target.linkLatencyCycles * static_cast<double>(messages) +
        load.bytes / target.linkBytesPerCycle();
    // A degraded link multiplies the whole stream — latency and wire time —
    // and the inflated stream then serialises onto its chip's lanes below,
    // so degradation slows congestion too, not just the lone transfer.
    if (linkFaults != nullptr) {
      pairCycles *= linkFaults->factor(pair.first, pair.second);
    }
    ipuOutSum[pair.first] += pairCycles;
    ipuOutMax[pair.first] = std::max(ipuOutMax[pair.first], pairCycles);
    ipuOutPairs[pair.first] += 1;
    ipuInSum[pair.second] += pairCycles;
    ipuInMax[pair.second] = std::max(ipuInMax[pair.second], pairCycles);
    ipuInPairs[pair.second] += 1;
  }
  double linkCycles = 0;
  for (std::size_t i = 0; i < target.numIpus; ++i) {
    const double outLanes = static_cast<double>(
        std::max<std::size_t>(1, std::min(target.linksPerIpu, ipuOutPairs[i])));
    const double inLanes = static_cast<double>(
        std::max<std::size_t>(1, std::min(target.linksPerIpu, ipuInPairs[i])));
    linkCycles = std::max(linkCycles,
                          std::max(ipuOutMax[i], ipuOutSum[i] / outLanes));
    linkCycles =
        std::max(linkCycles, std::max(ipuInMax[i], ipuInSum[i] / inLanes));
  }

  const double sync =
      stats.crossesIpus ? target.syncCyclesGlobal : target.syncCyclesOnChip;
  stats.intraCycles = target.exchangeInstrCycles * maxInstr +
                      std::max(maxSendCycles, maxRecvCycles);
  stats.interCycles = linkCycles;
  stats.cycles = sync + stats.intraCycles + stats.interCycles;
  return stats;
}

}  // namespace graphene::ipu
