// The dataflow graph: tensor variables, codelets, and compute sets, plus the
// per-tile SRAM ledger that constrains them. The Engine executes Programs
// against a Graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/codelet.hpp"
#include "graph/program.hpp"
#include "graph/tensor.hpp"
#include "ipu/cost_model.hpp"
#include "ipu/memory.hpp"
#include "ipu/target.hpp"

namespace graphene::graph {

class Graph {
 public:
  explicit Graph(ipu::IpuTarget target)
      : target_(target), ledger_(target) {}

  const ipu::IpuTarget& target() const { return target_; }

  /// The tile hosting control state: reduction gathers/finals, the
  /// authoritative replica of replicated scalars (loop conditions,
  /// convergence flags) and their host-side reads. Defaults to tile 0. A
  /// resilience layer that blacklists tiles must point it at a surviving
  /// tile *before* programs are emitted — control placed on a dead tile
  /// would freeze every loop condition at its last value.
  std::size_t controlTile() const { return controlTile_; }
  void setControlTile(std::size_t tile) {
    GRAPHENE_CHECK(tile < target_.totalTiles(), "control tile ", tile,
                   " out of range for ", target_.totalTiles(), " tiles");
    controlTile_ = tile;
  }

  /// How scalar reductions are scheduled on this machine. Flat gathers every
  /// tile's partial straight to the control tile; TwoLevel reduces within
  /// each IPU first (per-IPU leader), ships one scalar per IPU over the
  /// links, and broadcasts the result back — O(numIpus) link messages per
  /// reduction instead of O(tiles). Auto picks TwoLevel on pods.
  enum class ReduceMode { Auto, Flat, TwoLevel };
  ReduceMode reduceMode() const { return reduceMode_; }
  void setReduceMode(ReduceMode mode) { reduceMode_ = mode; }
  /// The mode Auto resolves to on this target.
  bool twoLevelReduce() const {
    if (reduceMode_ == ReduceMode::Flat) return false;
    if (reduceMode_ == ReduceMode::TwoLevel) return true;
    return target_.numIpus > 1 && target_.tilesPerIpu > 1;
  }

  /// Tiles that must not host reduction leaders or other per-IPU control
  /// state (dead tiles under a hard-fault blacklist). Like the control tile,
  /// this must be set *before* programs are emitted.
  void setExcludedTiles(std::vector<std::size_t> tiles) {
    for (std::size_t t : tiles) {
      GRAPHENE_CHECK(t < target_.totalTiles(), "excluded tile ", t,
                     " out of range for ", target_.totalTiles(), " tiles");
    }
    excludedTiles_ = std::move(tiles);
  }
  const std::vector<std::size_t>& excludedTiles() const {
    return excludedTiles_;
  }
  bool tileExcluded(std::size_t tile) const {
    for (std::size_t t : excludedTiles_) {
      if (t == tile) return true;
    }
    return false;
  }

  ipu::CostModel& costModel() { return costModel_; }
  const ipu::CostModel& costModel() const { return costModel_; }

  /// Creates a tensor variable; reserves its SRAM on every mapped tile.
  TensorId addTensor(TensorInfo info);

  const TensorInfo& tensor(TensorId id) const;
  std::size_t numTensors() const { return tensors_.size(); }

  CodeletId addCodelet(Codelet codelet);
  const Codelet& codelet(CodeletId id) const;
  std::size_t numCodelets() const { return codelets_.size(); }

  ComputeSetId addComputeSet(std::string category);
  void addVertex(ComputeSetId cs, Vertex v);
  /// Registers a counter ticked into Profile::metrics on every execution of
  /// `cs` (e.g. SpMV FLOPs). Cheap: the engine walks an almost-always-empty
  /// list per superstep.
  void addComputeSetMetric(ComputeSetId cs, std::string name, double value);
  const ComputeSet& computeSet(ComputeSetId id) const;
  std::size_t numComputeSets() const { return computeSets_.size(); }

  const ipu::TileMemoryLedger& ledger() const { return ledger_; }

 private:
  ipu::IpuTarget target_;
  std::size_t controlTile_ = 0;
  ReduceMode reduceMode_ = ReduceMode::Auto;
  std::vector<std::size_t> excludedTiles_;
  ipu::CostModel costModel_;
  ipu::TileMemoryLedger ledger_;
  std::vector<TensorInfo> tensors_;
  std::vector<Codelet> codelets_;
  std::vector<ComputeSet> computeSets_;
};

}  // namespace graphene::graph
