// DistMatrix — a sparse matrix distributed across the tiles of the simulated
// IPU, in the framework's modified-CRS device format (§II-C) with the §IV
// halo-region layout.
//
// Per tile it holds: the dense diagonal of its owned rows, the off-diagonal
// CRS arrays with *local* column indices into [owned | halo] space, and the
// blockwise halo-exchange plan. SpMV and the extended-precision residual of
// the MPIR method are emitted as CodeDSL codelets using all six workers.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dsl/tensor.hpp"
#include "graph/engine.hpp"
#include "matrix/csr.hpp"
#include "partition/halo.hpp"

namespace graphene::solver {

using dsl::DType;
using dsl::Tensor;

class DistMatrix {
 public:
  /// Builds device structures from a host matrix and a row→tile layout.
  /// Requires an active dsl::Context.
  DistMatrix(const matrix::CsrMatrix& a, partition::DistributedLayout layout);

  const partition::DistributedLayout& layout() const { return layout_; }
  std::size_t rows() const { return layout_.rowToTile.size(); }

  /// Tiles that own at least one row (vertices are only placed there).
  const std::vector<std::size_t>& activeTiles() const { return activeTiles_; }

  /// The per-tile owned-row mapping shared by all solver vectors.
  const graph::TileMapping& ownedMapping() const { return ownedMapping_; }

  /// Creates a vector with the owned-row mapping.
  Tensor makeVector(DType type = DType::Float32,
                    const std::string& name = "") const;

  /// Emits the blockwise halo exchange: separator regions of `v` are
  /// broadcast into this matrix's halo buffer for v's dtype.
  void haloExchange(const Tensor& v);

  /// Switches halo exchanges to the per-cell baseline plan (one transfer
  /// per separator cell — what a compiler without the §IV reordering would
  /// emit). Same payloads and numerics, far more exchange instructions;
  /// exists for A/B profiling of the reordering. Must be set before the
  /// solver program is emitted. The GRAPHENE_NO_HALO_REORDER environment
  /// variable forces it on at construction.
  void setPerCellHalo(bool on) { perCellHalo_ = on; }
  bool perCellHalo() const { return perCellHalo_; }

  /// Emits y = A·v. `exchange=false` skips the halo update (the scaling
  /// benches measure compute-only this way; values in the halo buffer are
  /// then whatever the last exchange left).
  void spmv(Tensor& y, const Tensor& v, bool exchange = true,
            const std::string& category = "spmv");

  /// Emits r = b − A·x with x, b, r all in an extended type (DoubleWord or
  /// Float64); matrix coefficients stay float32 (MPIR step 1, §V-B).
  void residualExt(Tensor& r, const Tensor& b, const Tensor& x);

  /// Enables ABFT checksum verification (algorithm-based fault tolerance,
  /// Huang & Abraham style). Per tile the identity
  ///   Σ_rows y[r] == Σ_cols colsum[c]·x[c]
  /// holds for y = A·x, where colsum is the per-local-column sum of the
  /// tile's coefficients (diagonal included). After this call every spmv()
  /// and residualExt() emission appends a checksum-check compute set that
  /// evaluates the per-tile relative defect and folds its maximum into the
  /// ABFT flag scalar. `tolerance` is the relative defect above which a
  /// check counts as a mismatch (rounding headroom: the identity is exact
  /// only in exact arithmetic). Must be called before the spmv emissions it
  /// should guard; it is a no-op on repeat calls.
  void enableAbft(double tolerance);
  bool abftEnabled() const { return abftEnabled_; }
  double abftTolerance() const { return abftTolerance_; }

  /// Replicated float32 scalar: the maximum relative checksum defect folded
  /// in since the last reset. Host guards read it after each iteration and
  /// write 0 to re-arm (valid only after enableAbft()).
  graph::TensorId abftFlagId() const;

  /// Uploads the matrix coefficients (must run before the program).
  void upload(graph::Engine& engine) const;

  /// Replaces the coefficients with those of `a`, which must have the
  /// *identical* sparsity structure (same rowPtr/colIdx) this DistMatrix was
  /// built from — any structural difference is a hard error. Refreshes the
  /// host staging that upload() pushes (ABFT column checksums included), so
  /// an already-emitted program re-executes against the new values after the
  /// next upload(). Caveat: factorisation preconditioners ((D)ILU,
  /// Gauss-Seidel) capture host value arrays at emission time and are NOT
  /// refreshed — value-only reuse is only sound for solver chains without
  /// them (the plan cache enforces this).
  void updateValues(const matrix::CsrMatrix& a);

  /// Host→device write of a vector in *global row order* (any dtype).
  void writeVector(graph::Engine& engine, const Tensor& v,
                   std::span<const double> globalValues) const;

  /// Device→host read of a vector back to global row order.
  std::vector<double> readVector(graph::Engine& engine, const Tensor& v) const;

  /// Same, addressed by tensor id. The tensor must use the owned-row
  /// mapping (any dtype) — the hard-fault migration path uses this to pull
  /// a solver's checkpoint out of a dying engine.
  std::vector<double> readVectorById(graph::Engine& engine,
                                     graph::TensorId id) const;

  /// Host-side local structure of one tile's owned submatrix (full rows
  /// including the diagonal, local column indices into [owned | halo]).
  /// Used by the (D)ILU and Gauss-Seidel builders.
  struct TileLocal {
    std::size_t numOwned = 0;
    std::size_t numHalo = 0;
    std::vector<std::size_t> rowPtr;   // numOwned + 1
    std::vector<std::int32_t> col;     // local indices, ascending per row
    std::vector<double> val;
  };
  const std::vector<TileLocal>& tileLocal() const { return tileLocal_; }

  /// Device tensors (for custom codelets).
  Tensor& diagonal() { return *diag_; }
  Tensor& offVal() { return *offVal_; }
  Tensor& offCol() { return *offCol_; }
  Tensor& offRowPtr() { return *offRowPtr_; }
  /// Per row: offset into the off-diagonal arrays where the halo-referencing
  /// entries begin. Local column indices are sorted, and halo copies live
  /// *after* the owned cells (§IV layout), so every row splits into an
  /// owned-column run followed by a halo run — the generated codelets loop
  /// over each run without per-entry branching.
  Tensor& haloSplit() { return *offSplit_; }
  Tensor& haloBuffer(DType type);

  /// Exchange-plan statistics (ablation bench): transfers in the blockwise
  /// plan vs the per-cell baseline.
  std::size_t numBlockwiseTransfers() const { return layout_.transfers.size(); }

 private:
  partition::DistributedLayout layout_;
  graph::TileMapping ownedMapping_;
  graph::TileMapping haloMapping_;
  std::vector<std::size_t> activeTiles_;
  std::vector<std::size_t> ownedFlatOffset_;  // per tile, into owned tensors
  bool perCellHalo_ = false;
  /// Cached per-cell plan (built lazily on first per-cell haloExchange).
  std::vector<partition::HaloTransfer> perCellPlan_;

  std::vector<TileLocal> tileLocal_;

  /// Recomputes abftOwnedHost_/abftHaloHost_ from tileLocal_ (enableAbft
  /// and updateValues share it).
  void recomputeAbftColumnSums();

  /// Emits the ABFT checksum check for an spmv-shaped emission. For
  /// y = A·x pass rhs == nullptr; for r = b − A·x pass rhs = &b (the
  /// identity then reads Σr + colsum·x − Σb == 0).
  void emitAbftCheck(const Tensor& y, const Tensor& x, const Tensor* rhs);

  // Device tensors (optional: constructed in ctor; pointers keep Tensor
  // default-constructible-free).
  std::optional<Tensor> diag_, offVal_, offCol_, offRowPtr_, offSplit_;
  std::map<DType, Tensor> haloBuffers_;

  // ABFT state (allocated by enableAbft).
  bool abftEnabled_ = false;
  double abftTolerance_ = 1e-3;
  std::optional<Tensor> abftColOwned_, abftColHalo_;  // per-column checksums
  std::optional<Tensor> abftRel_;   // per-active-tile relative defect
  std::optional<Tensor> abftFlag_;  // replicated max-defect scalar

  // Host staging for upload().
  std::vector<float> diagHost_, valHost_;
  std::vector<std::int32_t> colHost_, rowPtrHost_, splitHost_;
  std::vector<float> abftOwnedHost_, abftHaloHost_;
};

}  // namespace graphene::solver
