#include "support/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace graphene {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GRAPHENE_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::addRow(std::vector<std::string> cells) {
  GRAPHENE_CHECK(cells.size() == header_.size(), "row arity ", cells.size(),
                 " does not match header arity ", header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    oss << "|\n";
  };
  emitRow(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << "|" << std::string(widths[c] + 2, '-');
  }
  oss << "|\n";
  for (const auto& row : rows_) {
    emitRow(row);
  }
  return oss.str();
}

std::string formatSig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string formatTime(double seconds) {
  const char* unit = "s";
  double v = seconds;
  if (std::abs(v) < 1e-6) {
    v *= 1e9;
    unit = "ns";
  } else if (std::abs(v) < 1e-3) {
    v *= 1e6;
    unit = "us";
  } else if (std::abs(v) < 1.0) {
    v *= 1e3;
    unit = "ms";
  }
  return formatSig(v, 4) + " " + unit;
}

std::string formatBytes(double bytes) {
  const char* unit = "B";
  double v = bytes;
  if (std::abs(v) >= 1e9) {
    v /= 1e9;
    unit = "GB";
  } else if (std::abs(v) >= 1e6) {
    v /= 1e6;
    unit = "MB";
  } else if (std::abs(v) >= 1e3) {
    v /= 1e3;
    unit = "kB";
  }
  return formatSig(v, 4) + " " + unit;
}

}  // namespace graphene
