// Figure 6: weak scaling of one SpMV — the grid grows with the pod so every
// tile keeps the same number of rows; ideal weak scaling means constant
// time. On a single chip the all-to-all fabric exchanges all separator
// regions simultaneously (§VI-B); across chips the halo crosses serialised
// IPU-Link lanes, but pod-aware partitioning keeps the cut surface (and the
// aggregated per-link payload) roughly constant per IPU pair, so the
// exchange time still stays flat in the multi-IPU regime.
//
// Paper: 58 M to 890 M nnz on 1..16 IPUs; here scaled down (sizes printed).
// Emits schemaVersion-2 JSON rows tagged figure=fig6 (see
// BENCH_SCALING.json / tools/check_bench_regression.py); `--json <path>`
// writes the report, tables stay on stdout.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace graphene;

int main(int argc, char** argv) {
  bench::printHeader("Figure 6 — SpMV weak scaling on a pod",
                     "constant time per SpMV at constant rows/tile "
                     "(paper Fig. 6)");

  const std::size_t tilesPerIpu = 64;
  const std::size_t rowsPerTile = 1000;
  const std::size_t ipuCounts[] = {1, 2, 4, 8, 16};

  std::printf("%zu tiles per simulated IPU, ~%zu rows per tile\n\n",
              tilesPerIpu, rowsPerTile);

  bench::BenchMeta meta = bench::parseBenchMeta(argc, argv);
  meta.tiles = 0;  // varies per row
  meta.hostThreads = 1;
  bench::BenchReport report("scaling", meta);
  report.setField("tilesPerIpu", tilesPerIpu);

  TextTable t({"IPUs", "grid", "nnz", "total time", "compute time",
               "halo+sync time", "inter-IPU bytes"});
  std::vector<double> totals, halos;
  for (std::size_t ipus : ipuCounts) {
    const double targetRows =
        static_cast<double>(rowsPerTile * tilesPerIpu * ipus);
    const std::size_t side =
        static_cast<std::size_t>(std::round(std::cbrt(targetRows)));
    auto g = matrix::poisson3d7(side, side, side);

    const ipu::Topology topo =
        ipus == 1 ? ipu::Topology::singleIpu(tilesPerIpu)
                  : ipu::Topology::pod(ipus, tilesPerIpu);
    bench::DistSystem s = bench::makeSystem(g, topo);
    dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
    dsl::Tensor y = s.A->makeVector(dsl::DType::Float32, "y");
    s.A->spmv(y, x);
    auto xh = bench::randomRhs(g.matrix.rows());
    auto prof = bench::runProgram(s, s.ctx->program(), xh, x);

    const ipu::IpuTarget& target = topo.target();
    const double total = target.secondsFromCycles(prof.totalCycles());
    const double compute =
        target.secondsFromCycles(prof.totalComputeCycles());
    const double halo =
        target.secondsFromCycles(prof.exchangeCycles + prof.syncCycles);
    totals.push_back(total);
    halos.push_back(halo);
    t.addRow({std::to_string(ipus),
              std::to_string(side) + "^3",
              std::to_string(g.matrix.nnz()), formatTime(total),
              formatTime(compute), formatTime(halo),
              formatBytes(static_cast<double>(prof.interIpuBytes))});

    json::Object row;
    row["figure"] = "fig6";
    row["problem"] = "weak";
    row["ipus"] = ipus;
    row["tiles"] = ipus * tilesPerIpu;
    row["rows"] = g.matrix.rows();
    row["nnz"] = g.matrix.nnz();
    row["totalCycles"] = prof.totalCycles();
    row["interIpuCycles"] = prof.exchangeInterCycles;
    row["interIpuBytes"] = prof.interIpuBytes;
    row["interIpuMessages"] = prof.interIpuMessages;
    report.addResult(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());

  // Ideal weak scaling: total time roughly flat 1 → 16 IPUs.
  double drift = totals.back() / totals.front();
  std::printf("check: total time at 16 IPUs within 1.35x of 1 IPU "
              "(ideal weak scaling): %s (%.2fx)\n",
              drift < 1.35 ? "PASS" : "FAIL", drift);
  // The 1→2 IPU step adds the one-time IPU-Link hop; within the multi-IPU
  // regime the exchange time must stay flat even though the total
  // communication volume grows linearly (§VI-B): halo aggregation keeps it
  // at one link transfer per IPU pair per superstep.
  double haloDrift = halos.back() / std::max(halos[1], 1e-12);
  std::printf("check: halo exchange time stays flat from 2 to 16 IPUs "
              "(aggregated links): %s (%.2fx)\n",
              haloDrift < 1.3 ? "PASS" : "FAIL", haloDrift);

  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      std::ofstream out(argv[i + 1], std::ios::binary);
      out << report.dump() << "\n";
      std::printf("wrote %s\n", argv[i + 1]);
    }
  }
  return 0;
}
