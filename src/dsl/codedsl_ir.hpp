// Statement/expression IR emitted by CodeDSL tracing.
//
// On real hardware, CodeDSL "simply emits C control flow statements into the
// generated codelets" (§III) which Poplar compiles to tile machine code. In
// this simulation the traced codelet is an IR tree that the interpreter
// (dsl/interpreter.*) executes against tile-local tensor slices while
// charging cycle costs — the functional and timing equivalent of the
// generated C++ codelet.
#pragma once

#include <memory>
#include <vector>

#include "graph/scalar.hpp"
#include "ipu/types.hpp"

namespace graphene::dsl {

using graph::Scalar;
using ipu::DType;

enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
  Min, Max,
};

enum class UnOp { Neg, Abs, Sqrt, Not };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind {
    Const,      // literal scalar
    Var,        // local variable slot
    ArgLoad,    // args[arg][a] — tile-local tensor element load
    ArgSize,    // args[arg].size() for the executing tile
    Binary,     // a bop b
    Unary,      // uop a
    Cast,       // (type) a
    Select,     // a ? b : c
    WorkerId,   // id of the executing worker thread (0..5)
  };

  Kind kind = Kind::Const;
  DType type = DType::Float32;  // result type at trace time
  Scalar constant;              // Const
  int var = -1;                 // Var
  int arg = -1;                 // ArgLoad / ArgSize
  ExprPtr a, b, c;
  BinOp bop = BinOp::Add;
  UnOp uop = UnOp::Neg;
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;
using StmtList = std::vector<StmtPtr>;

struct Stmt {
  enum class Kind {
    Assign,    // vars[var] = value
    StoreArg,  // args[arg][index] = value
    If,        // if (cond) body else elseBody
    While,     // while (cond) body
    For,       // for (var = begin; var < end; var += step) body
    ParFor,    // worker-parallel for over [begin, end): iterations are
               // distributed over the tile's six workers (iputhreading model)
  };

  Kind kind = Kind::Assign;
  int var = -1;
  int arg = -1;
  ExprPtr index, value, cond, begin, end, step;
  StmtList body, elseBody;
};

/// A fully traced codelet: its statements plus the variable-slot count and
/// whether it drives all six workers itself (ParFor ⇒ supervisor codelet).
struct CodeletIR {
  StmtList statements;
  int numVars = 0;
  bool usesWorkers = false;
  std::size_t numArgs = 0;
};

// ---------------------------------------------------------------------------
// Linearised ("flat") form of the traced IR.
//
// The shared_ptr trees above are convenient to build during tracing but
// expensive to walk millions of times inside solver loops: every node is a
// separate heap object (pointer chases, no locality) and evaluation recurses.
// The interpreter therefore flattens each codelet once into the index-linked
// arrays below — a compact bytecode the flat executor walks with plain
// integer indices. Flattening is purely structural; evaluation semantics and
// cycle accounting are defined by the executor, not by this representation.
// ---------------------------------------------------------------------------

/// One expression node; child links are indices into FlatCodelet::exprs
/// (-1 = absent).
struct FlatExpr {
  Expr::Kind kind = Expr::Kind::Const;
  DType type = DType::Float32;  // result type at trace time
  Scalar constant;              // Const
  std::int32_t var = -1;        // Var
  std::int32_t arg = -1;        // ArgLoad / ArgSize
  std::int32_t a = -1, b = -1, c = -1;
  BinOp bop = BinOp::Add;
  UnOp uop = UnOp::Neg;
};

/// One statement; expression operands are indices into FlatCodelet::exprs,
/// statement bodies are indices into FlatCodelet::lists (-1 = absent).
struct FlatStmt {
  Stmt::Kind kind = Stmt::Kind::Assign;
  std::int32_t var = -1;
  std::int32_t arg = -1;
  std::int32_t index = -1, value = -1, cond = -1;
  std::int32_t begin = -1, end = -1, step = -1;
  std::int32_t body = -1, elseBody = -1;
  /// For/ParFor only: id of a compiled bulk loop kernel in the owning
  /// CompiledCodelet (-1 = run the generic statement walk). Filled in by the
  /// interpreter's compile step, not by flattening.
  std::int32_t fastLoop = -1;
};

/// A flattened codelet: all expressions and statements of the tree pooled
/// into arrays, with statement sequences stored as index lists.
struct FlatCodelet {
  std::vector<FlatExpr> exprs;
  std::vector<FlatStmt> stmts;
  std::vector<std::vector<std::int32_t>> lists;  // stmt-id sequences
  std::int32_t root = -1;                        // top-level list id
  int numVars = 0;
  bool usesWorkers = false;
  std::size_t numArgs = 0;
};

/// Flattens a traced codelet tree. The result is self-contained (no
/// references back into `ir`).
FlatCodelet flattenCodelet(const CodeletIR& ir);

}  // namespace graphene::dsl
