// Superstep fusion must be invisible to the simulated machine.
//
// graph::fuseSupersteps merges runs of adjacent Execute steps into one
// ExecuteFused step so the engine can simulate each tile's work for the whole
// run with a single host dispatch. These tests pin down the legality rules —
// copies, host calls and ABFT compute sets end a fusable run; fault plans,
// trace sinks, tile profiles and excluded tiles make the engine fall back to
// per-superstep execution — and assert the only property that matters: fused
// and unfused runs are bit-identical in results and exactly equal in every
// Profile total. The event-driven exchange path (cached copy plans) gets the
// same treatment against the full per-segment walk.
#include <gtest/gtest.h>

#include <vector>

#include "graph/compiler.hpp"
#include "graph/engine.hpp"
#include "graph/graph.hpp"
#include "ipu/fault.hpp"
#include "support/trace.hpp"

using namespace graphene;
using namespace graphene::graph;

namespace {

/// Field-by-field exact comparison (doubles compared with ==).
void expectProfilesIdentical(const ipu::Profile& a, const ipu::Profile& b) {
  EXPECT_EQ(a.computeCycles.size(), b.computeCycles.size());
  for (const auto& [category, cycles] : a.computeCycles) {
    auto it = b.computeCycles.find(category);
    ASSERT_NE(it, b.computeCycles.end()) << "missing category " << category;
    EXPECT_EQ(cycles, it->second) << "cycles differ in " << category;
  }
  EXPECT_EQ(a.exchangeCycles, b.exchangeCycles);
  EXPECT_EQ(a.syncCycles, b.syncCycles);
  EXPECT_EQ(a.computeSupersteps, b.computeSupersteps);
  EXPECT_EQ(a.exchangeSupersteps, b.exchangeSupersteps);
  EXPECT_EQ(a.exchangeInstructions, b.exchangeInstructions);
  EXPECT_EQ(a.exchangedBytes, b.exchangedBytes);
  EXPECT_EQ(a.verticesExecuted, b.verticesExecuted);
  ASSERT_EQ(a.faultEvents.size(), b.faultEvents.size());
}

/// A two-tile graph whose compute sets append a marker to every element of
/// `data` (x = 2x + k): order-sensitive, so any reordering of supersteps or
/// tiles would change the result bits.
struct TestRig {
  Graph g{ipu::IpuTarget::testTarget(2)};
  TensorId data = kInvalidTensor;

  TestRig() {
    TensorInfo info;
    info.name = "data";
    info.dtype = ipu::DType::Float32;
    info.mapping = TileMapping::linear(8, 2);
    data = g.addTensor(std::move(info));
  }

  /// Adds a compute set (one vertex per tile) computing x = 2x + k over the
  /// tile's slice of `data`.
  ComputeSetId addStep(float k, const std::string& category = "step") {
    CodeletId c = g.addCodelet(Codelet{
        "affine", [k](VertexContext& ctx) {
          auto s = ctx.floatSpan(0);
          for (float& x : s) x = 2.0f * x + k;
          return VertexCost{static_cast<double>(s.size()) * 3.0, false};
        }});
    ComputeSetId cs = g.addComputeSet(category);
    for (std::size_t tile = 0; tile < 2; ++tile) {
      Vertex vx;
      vx.codelet = c;
      vx.tile = tile;
      vx.args.push_back(TensorSlice{data, tile, 0, 4});
      g.addVertex(cs, vx);
    }
    return cs;
  }

  CopySegment haloSeg(std::size_t srcTile, std::size_t dstTile) {
    CopySegment s;
    s.src = data;
    s.srcTile = srcTile;
    s.srcBegin = 0;
    s.dst = data;
    s.dsts.push_back({dstTile, 2});
    s.count = 2;
    return s;
  }

  std::vector<float> runOn(Engine& e, const ProgramPtr& p) {
    e.writeTensor<float>(data, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8});
    e.run(p);
    return e.readTensor<float>(data);
  }
};

}  // namespace

TEST(Fusion, FusesAdjacentExecuteRunsOnly) {
  TestRig rig;
  ComputeSetId a = rig.addStep(1.0f);
  ComputeSetId b = rig.addStep(2.0f);
  ComputeSetId c = rig.addStep(3.0f);
  auto seq = Program::sequence();
  seq->children.push_back(Program::execute(a));
  seq->children.push_back(Program::execute(b));
  seq->children.push_back(Program::copy({rig.haloSeg(0, 1)}));
  seq->children.push_back(Program::execute(c));

  auto fused = fuseSupersteps(seq, rig.g);
  ProgramStats stats = analyzeProgram(fused);
  EXPECT_EQ(stats.fusedSteps, 1u);    // a+b fused; copy ends the run
  EXPECT_EQ(stats.executeSteps, 3u);  // members still count as supersteps
  EXPECT_EQ(stats.copySteps, 1u);
  // The original tree is untouched.
  EXPECT_EQ(analyzeProgram(seq).fusedSteps, 0u);

  // Fused and unfused execution agree bit-for-bit, including every profile
  // total (each member commits its own superstep).
  Engine unfused(rig.g, 1);
  unfused.setSuperstepFusion(false);
  Engine fusedEngine(rig.g, 1);
  // Force fusion on so the A/B holds even when the whole suite runs under
  // GRAPHENE_NO_FUSION=1 (the CI oracle job).
  fusedEngine.setSuperstepFusion(true);
  ASSERT_TRUE(fusedEngine.superstepFusion());
  const std::vector<float> want = rig.runOn(unfused, seq);
  const std::vector<float> got = rig.runOn(fusedEngine, seq);
  EXPECT_EQ(want, got);
  expectProfilesIdentical(unfused.profile(), fusedEngine.profile());
  EXPECT_EQ(fusedEngine.profile().computeSupersteps, 3u);
  EXPECT_EQ(fusedEngine.simCycles(), unfused.simCycles());
}

TEST(Fusion, SingleExecuteAndNonExecuteStepsAreLeftAlone) {
  TestRig rig;
  ComputeSetId a = rig.addStep(1.0f);
  auto seq = Program::sequence();
  seq->children.push_back(Program::copy({rig.haloSeg(0, 1)}));
  seq->children.push_back(Program::execute(a));
  seq->children.push_back(Program::copy({rig.haloSeg(1, 0)}));

  ProgramStats stats = analyzeProgram(fuseSupersteps(seq, rig.g));
  EXPECT_EQ(stats.fusedSteps, 0u);  // a lone Execute never fuses
  EXPECT_EQ(stats.executeSteps, 1u);
  EXPECT_EQ(stats.copySteps, 2u);
}

TEST(Fusion, AbftComputeSetsBlockFusion) {
  TestRig rig;
  ComputeSetId a = rig.addStep(1.0f);
  ComputeSetId guard = rig.addStep(0.5f, "abft");
  ComputeSetId b = rig.addStep(2.0f);
  auto seq = Program::sequence();
  seq->children.push_back(Program::execute(a));
  seq->children.push_back(Program::execute(guard));
  seq->children.push_back(Program::execute(b));

  // The ABFT set splits the run: a and b end up alone, nothing fuses.
  ProgramStats stats = analyzeProgram(fuseSupersteps(seq, rig.g));
  EXPECT_EQ(stats.fusedSteps, 0u);
  EXPECT_EQ(stats.executeSteps, 3u);

  // With the ABFT set at the end, the leading pair still fuses.
  auto seq2 = Program::sequence();
  seq2->children.push_back(Program::execute(a));
  seq2->children.push_back(Program::execute(b));
  seq2->children.push_back(Program::execute(guard));
  ProgramStats stats2 = analyzeProgram(fuseSupersteps(seq2, rig.g));
  EXPECT_EQ(stats2.fusedSteps, 1u);
  EXPECT_EQ(stats2.executeSteps, 3u);
}

TEST(Fusion, HostCallsBlockFusion) {
  TestRig rig;
  ComputeSetId a = rig.addStep(1.0f);
  ComputeSetId b = rig.addStep(2.0f);
  auto seq = Program::sequence();
  seq->children.push_back(Program::execute(a));
  seq->children.push_back(Program::hostCall([](Engine&) {}));
  seq->children.push_back(Program::execute(b));
  ProgramStats stats = analyzeProgram(fuseSupersteps(seq, rig.g));
  EXPECT_EQ(stats.fusedSteps, 0u);
  EXPECT_EQ(stats.hostCallSteps, 1u);
}

TEST(Fusion, FaultPlanFallsBackAndStaysIdentical) {
  // A stall on the fused pair's superstep: the fault hook must observe the
  // same superstep indices and charge the same cycles whether or not the
  // program was fused — the engine runs fused members as plain supersteps
  // whenever a plan is attached.
  auto makePlan = [] {
    return ipu::FaultPlan::fromJsonText(R"({
      "seed": 3,
      "faults": [{"type": "stall", "tile": 1, "cycles": 777, "superstep": 1}]
    })");
  };
  TestRig rigA;
  ComputeSetId a1 = rigA.addStep(1.0f);
  ComputeSetId b1 = rigA.addStep(2.0f);
  auto seqA = Program::sequence();
  seqA->children.push_back(Program::execute(a1));
  seqA->children.push_back(Program::execute(b1));

  TestRig rigB;
  ComputeSetId a2 = rigB.addStep(1.0f);
  ComputeSetId b2 = rigB.addStep(2.0f);
  auto seqB = Program::sequence();
  seqB->children.push_back(Program::execute(a2));
  seqB->children.push_back(Program::execute(b2));

  ipu::FaultPlan planA = makePlan();
  ipu::FaultPlan planB = makePlan();
  Engine unfused(rigA.g, 1);
  unfused.setSuperstepFusion(false);
  unfused.setFaultPlan(&planA);
  Engine fused(rigB.g, 1);
  fused.setSuperstepFusion(true);  // hold the A/B under GRAPHENE_NO_FUSION=1
  fused.setFaultPlan(&planB);
  const std::vector<float> want = rigA.runOn(unfused, seqA);
  const std::vector<float> got = rigB.runOn(fused, seqB);
  EXPECT_EQ(want, got);
  expectProfilesIdentical(unfused.profile(), fused.profile());
  EXPECT_FALSE(fused.profile().faultEvents.empty());
}

TEST(Fusion, TraceSinkFallsBackAndStaysIdentical) {
  TestRig rigA;
  auto seqA = Program::sequence();
  seqA->children.push_back(Program::execute(rigA.addStep(1.0f)));
  seqA->children.push_back(Program::execute(rigA.addStep(2.0f)));
  TestRig rigB;
  auto seqB = Program::sequence();
  seqB->children.push_back(Program::execute(rigB.addStep(1.0f)));
  seqB->children.push_back(Program::execute(rigB.addStep(2.0f)));

  support::TraceSink sinkA, sinkB;
  Engine unfused(rigA.g, 1);
  unfused.setSuperstepFusion(false);
  unfused.setTraceSink(&sinkA);
  Engine fused(rigB.g, 1);
  fused.setSuperstepFusion(true);  // hold the A/B under GRAPHENE_NO_FUSION=1
  fused.setTraceSink(&sinkB);
  const std::vector<float> want = rigA.runOn(unfused, seqA);
  const std::vector<float> got = rigB.runOn(fused, seqB);
  EXPECT_EQ(want, got);
  expectProfilesIdentical(unfused.profile(), fused.profile());
  // A trace-enabled run must still see one event per superstep, at the same
  // timestamps — fusion is required to fall back, not to skip emission.
  ASSERT_EQ(sinkA.events().size(), sinkB.events().size());
  for (std::size_t i = 0; i < sinkA.events().size(); ++i) {
    EXPECT_EQ(sinkA.events()[i].startCycle, sinkB.events()[i].startCycle);
    EXPECT_EQ(sinkA.events()[i].durationCycles,
              sinkB.events()[i].durationCycles);
  }
}

TEST(Fusion, ExcludedTilesFallBackAndStayIdentical) {
  TestRig rigA;
  auto seqA = Program::sequence();
  seqA->children.push_back(Program::execute(rigA.addStep(1.0f)));
  seqA->children.push_back(Program::execute(rigA.addStep(2.0f)));
  TestRig rigB;
  auto seqB = Program::sequence();
  seqB->children.push_back(Program::execute(rigB.addStep(1.0f)));
  seqB->children.push_back(Program::execute(rigB.addStep(2.0f)));

  Engine unfused(rigA.g, 1);
  unfused.setSuperstepFusion(false);
  unfused.setExcludedTiles({1});
  Engine fused(rigB.g, 1);
  fused.setSuperstepFusion(true);  // hold the A/B under GRAPHENE_NO_FUSION=1
  fused.setExcludedTiles({1});
  const std::vector<float> want = rigA.runOn(unfused, seqA);
  const std::vector<float> got = rigB.runOn(fused, seqB);
  EXPECT_EQ(want, got);
  expectProfilesIdentical(unfused.profile(), fused.profile());
  // The excluded tile really executed nothing: its slice still holds the
  // uploaded values.
  EXPECT_EQ(got[4], 5.0f);
  EXPECT_EQ(got[7], 8.0f);
}

TEST(Fusion, FusedPlanRebuildsWhenComputeSetGrows) {
  // Run a fused pair, then append vertices to one member and run again: the
  // cached per-tile worklist must rebuild (it mirrors each member plan's
  // vertex-count staleness stamp), not replay the stale one.
  TestRig rigA;
  ComputeSetId a1 = rigA.addStep(1.0f);
  ComputeSetId b1 = rigA.addStep(2.0f);
  auto seqA = Program::sequence();
  seqA->children.push_back(Program::execute(a1));
  seqA->children.push_back(Program::execute(b1));
  TestRig rigB;
  ComputeSetId a2 = rigB.addStep(1.0f);
  ComputeSetId b2 = rigB.addStep(2.0f);
  auto seqB = Program::sequence();
  seqB->children.push_back(Program::execute(a2));
  seqB->children.push_back(Program::execute(b2));

  Engine unfused(rigA.g, 1);
  unfused.setSuperstepFusion(false);
  Engine fused(rigB.g, 1);
  fused.setSuperstepFusion(true);  // hold the A/B under GRAPHENE_NO_FUSION=1
  rigA.runOn(unfused, seqA);
  rigB.runOn(fused, seqB);

  // Grow member b with a second pass over tile 0 (same codelet as "step").
  auto grow = [](TestRig& rig, ComputeSetId cs) {
    CodeletId c = rig.g.addCodelet(Codelet{
        "affine2", [](VertexContext& ctx) {
          auto s = ctx.floatSpan(0);
          for (float& x : s) x = 2.0f * x + 9.0f;
          return VertexCost{static_cast<double>(s.size()) * 3.0, false};
        }});
    Vertex vx;
    vx.codelet = c;
    vx.tile = 0;
    vx.args.push_back(TensorSlice{rig.data, 0, 0, 4});
    rig.g.addVertex(cs, vx);
  };
  grow(rigA, b1);
  grow(rigB, b2);
  const std::vector<float> want = rigA.runOn(unfused, seqA);
  const std::vector<float> got = rigB.runOn(fused, seqB);
  EXPECT_EQ(want, got);
  expectProfilesIdentical(unfused.profile(), fused.profile());
}

TEST(Exchange, CachedCopyPlanMatchesSegmentWalk) {
  // The engine resolves a Copy step once and replays it when no fault plan
  // or tile profile is attached. An *empty* fault plan forces the full
  // per-segment walk without changing any outcome — a perfect oracle.
  TestRig rigA;
  auto seqA = Program::sequence();
  seqA->children.push_back(
      Program::copy({rigA.haloSeg(0, 1), rigA.haloSeg(1, 0)}));
  seqA->children.push_back(Program::execute(rigA.addStep(1.0f)));
  seqA->children.push_back(
      Program::copy({rigA.haloSeg(0, 1), rigA.haloSeg(1, 0)}));
  TestRig rigB;
  auto seqB = Program::sequence();
  seqB->children.push_back(
      Program::copy({rigB.haloSeg(0, 1), rigB.haloSeg(1, 0)}));
  seqB->children.push_back(Program::execute(rigB.addStep(1.0f)));
  seqB->children.push_back(
      Program::copy({rigB.haloSeg(0, 1), rigB.haloSeg(1, 0)}));

  ipu::FaultPlan empty = ipu::FaultPlan::fromJsonText(R"({"faults": []})");
  Engine walked(rigA.g, 1);
  walked.setFaultPlan(&empty);  // forces the per-segment path
  Engine cached(rigB.g, 1);
  const std::vector<float> want = rigA.runOn(walked, seqA);
  const std::vector<float> got = rigB.runOn(cached, seqB);
  EXPECT_EQ(want, got);
  expectProfilesIdentical(walked.profile(), cached.profile());
  EXPECT_GT(cached.profile().exchangedBytes, 0u);

  // Replay: run the same program again on the cached engine — the second
  // pass (a pure cache hit) must charge exactly the same exchange totals.
  const auto bytesOnce = cached.profile().exchangedBytes;
  const auto cyclesOnce = cached.profile().exchangeCycles;
  rigB.runOn(cached, seqB);
  EXPECT_EQ(cached.profile().exchangedBytes, 2 * bytesOnce);
  EXPECT_EQ(cached.profile().exchangeCycles, 2 * cyclesOnce);
}

TEST(Exchange, ZeroByteExchangeIsSkippedButStillCommitted) {
  // A Copy whose only destination is its own source is a zero-byte exchange
  // superstep: the event-driven path must skip the segment simulation yet
  // still commit the superstep (count +1, zero bytes, zero cycles) exactly
  // like the full walk does.
  TestRig rigA;
  CopySegment self;
  self.src = rigA.data;
  self.srcTile = 0;
  self.srcBegin = 0;
  self.dst = rigA.data;
  self.dsts.push_back({0, 0});
  self.count = 4;
  auto seqA = Program::sequence();
  seqA->children.push_back(Program::copy({self}));

  ipu::FaultPlan empty = ipu::FaultPlan::fromJsonText(R"({"faults": []})");
  Engine walked(rigA.g, 1);
  walked.setFaultPlan(&empty);
  Engine cached(rigA.g, 1);
  const std::vector<float> want = rigA.runOn(walked, seqA);
  const std::vector<float> got = rigA.runOn(cached, seqA);
  EXPECT_EQ(want, got);
  expectProfilesIdentical(walked.profile(), cached.profile());
  EXPECT_EQ(cached.profile().exchangeSupersteps, 1u);
  EXPECT_EQ(cached.profile().exchangedBytes, 0u);
  EXPECT_EQ(cached.profile().exchangeCycles, 0.0);
}
