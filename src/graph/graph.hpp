// The dataflow graph: tensor variables, codelets, and compute sets, plus the
// per-tile SRAM ledger that constrains them. The Engine executes Programs
// against a Graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/codelet.hpp"
#include "graph/program.hpp"
#include "graph/tensor.hpp"
#include "ipu/cost_model.hpp"
#include "ipu/memory.hpp"
#include "ipu/target.hpp"

namespace graphene::graph {

class Graph {
 public:
  explicit Graph(ipu::IpuTarget target)
      : target_(target), ledger_(target) {}

  const ipu::IpuTarget& target() const { return target_; }

  ipu::CostModel& costModel() { return costModel_; }
  const ipu::CostModel& costModel() const { return costModel_; }

  /// Creates a tensor variable; reserves its SRAM on every mapped tile.
  TensorId addTensor(TensorInfo info);

  const TensorInfo& tensor(TensorId id) const;
  std::size_t numTensors() const { return tensors_.size(); }

  CodeletId addCodelet(Codelet codelet);
  const Codelet& codelet(CodeletId id) const;
  std::size_t numCodelets() const { return codelets_.size(); }

  ComputeSetId addComputeSet(std::string category);
  void addVertex(ComputeSetId cs, Vertex v);
  /// Registers a counter ticked into Profile::metrics on every execution of
  /// `cs` (e.g. SpMV FLOPs). Cheap: the engine walks an almost-always-empty
  /// list per superstep.
  void addComputeSetMetric(ComputeSetId cs, std::string name, double value);
  const ComputeSet& computeSet(ComputeSetId id) const;
  std::size_t numComputeSets() const { return computeSets_.size(); }

  const ipu::TileMemoryLedger& ledger() const { return ledger_; }

 private:
  ipu::IpuTarget target_;
  ipu::CostModel costModel_;
  ipu::TileMemoryLedger ledger_;
  std::vector<TensorInfo> tensors_;
  std::vector<Codelet> codelets_;
  std::vector<ComputeSet> computeSets_;
};

}  // namespace graphene::graph
