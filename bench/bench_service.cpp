// Serving-layer bench: an open-loop traffic generator against the
// SolverService.
//
// Two questions the serving layer is accountable for:
//   1. What does the plan cache buy? Jobs are classified by how they ran —
//      cold (pipeline built for this job) vs warm (leased a pooled
//      pipeline) — and each class reports its simulated-latency
//      distribution (p50/p99) and throughput in solves per simulated
//      second. The gap is the build cost the cache amortises.
//   2. What does the service do under stress? A burst beyond the queue
//      bound, with a slice of fault-injected jobs, reports the rejection
//      and retry rates off the service counters — the same numbers a
//      Prometheus scrape of a deployment would show.
//
// Emits the shared bench JSON envelope to stdout (saved as
// BENCH_SERVICE.json at the repo root). Latency distributions are simulated
// cycles (deterministic); backoff is configured to zero so those paths
// never sleep. The one exception to the no-wall-clock rule is the
// build-amortisation scenario: pipeline builds are *host* work the
// simulated clock cannot see, so cold-vs-warm solves/sec is necessarily a
// wall measurement — its rows are the only machine-dependent ones in the
// report. Run metadata comes in via `--git-rev` / `--date` argv flags (see
// bench_json.hpp).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "graphene.hpp"

namespace {

using namespace graphene;

constexpr double kClockHz = 1.325e9;  // Mk2 tile clock (ipu/target.hpp)

/// The service's simulated-cycles latency ladder (service.latency.cycles.*
/// in the /metrics exposition). The bench buckets its samples through the
/// same ladder and derives p50/p99 the way a Prometheus scrape would —
/// bucket interpolation over a fixed ladder, not per-sample sorting — so
/// the snapshot and a live scrape of the same run agree by construction.
constexpr support::HistogramLadder kCyclesLadder{1024.0, 2.0, 24};

json::Value cgConfig() {
  return json::parse(R"({"type": "cg", "tolerance": 1e-6,
                         "maxIterations": 300})");
}

std::vector<double> seededRhs(std::uint64_t seed, std::size_t n) {
  Rng rng(seed * 2 + 1);
  std::vector<double> rhs(n);
  for (double& v : rhs) v = rng.uniform(-1.0, 1.0);
  return rhs;
}

/// A seeded transient fault plan for the stress slice: enough corruption to
/// force retries, not enough to make every attempt hopeless.
json::Value stressPlan(std::uint64_t seed) {
  json::Object f;
  f["type"] = "bitflip";
  f["tensor"] = "resid";
  f["bit"] = 30.0;
  f["probability"] = 1.0;
  f["count"] = 100000.0;
  json::Object plan;
  plan["seed"] = static_cast<double>(seed);
  plan["faults"] = json::Value(json::Array{json::Value(f)});
  return json::Value(plan);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchMeta meta = bench::parseBenchMeta(argc, argv);
  meta.tiles = 16;
  bench::BenchReport report("service", meta);
  report.setField("clockHz", kClockHz);

  // ---- Throughput: cold builds vs warm plan-cache leases -----------------
  {
    solver::SolverService service({.workers = 4, .tiles = 16});
    const matrix::GeneratedMatrix structures[] = {
        matrix::poisson2d5(12, 12), matrix::poisson3d7(6, 6, 6)};

    // Open loop: every job is submitted up front; arrivals never wait for
    // completions. Twelve jobs per structure — the first per structure (and
    // any concurrent collision) builds cold, the rest lease warm.
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < 24; ++i) {
      const auto& g = structures[i % 2];
      ids.push_back(
          service.submit(g, cgConfig(), seededRhs(i, g.matrix.rows())));
    }

    support::Histogram coldHist(kCyclesLadder), warmHist(kCyclesLadder);
    for (std::size_t id : ids) {
      const solver::JobResult r = service.wait(id);
      if (r.typedError || r.solve.status != solver::SolveStatus::Converged) {
        std::fprintf(stderr, "throughput job %zu did not converge: %s %s\n",
                     r.jobId, solver::toString(r.solve.status),
                     r.message.c_str());
        return 1;
      }
      (r.planCacheHit ? warmHist : coldHist).observe(r.simCycles);
    }

    // The ladder itself, once, so a consumer can reconstruct bucket bounds
    // from the per-phase counts below.
    {
      json::Object row;
      row["scenario"] = "throughput";
      row["phase"] = "ladder";
      row["firstBound"] = kCyclesLadder.firstBound;
      row["growth"] = kCyclesLadder.growth;
      row["bucketCount"] = kCyclesLadder.bucketCount;
      json::Array bounds;
      for (std::size_t i = 0; i < kCyclesLadder.bucketCount; ++i) {
        bounds.push_back(json::Value(kCyclesLadder.upperBound(i)));
      }
      row["upperBounds"] = std::move(bounds);
      report.addResult(std::move(row));
    }

    for (const auto& [phase, hist] :
         {std::pair{"cold", &coldHist}, std::pair{"warm", &warmHist}}) {
      const double mean =
          hist->count > 0 ? hist->sum / static_cast<double>(hist->count) : 0;
      json::Object row;
      row["scenario"] = "throughput";
      row["phase"] = phase;
      row["solves"] = hist->count;
      row["meanCycles"] = mean;
      row["p50Cycles"] = hist->quantile(0.50);
      row["p99Cycles"] = hist->quantile(0.99);
      row["p50LatencyMs"] = hist->quantile(0.50) / kClockHz * 1e3;
      row["p99LatencyMs"] = hist->quantile(0.99) / kClockHz * 1e3;
      row["solvesPerSimSecond"] = mean > 0 ? kClockHz / mean : 0;
      json::Array buckets;
      for (std::uint64_t b : hist->buckets) {
        buckets.push_back(json::Value(static_cast<double>(b)));
      }
      row["buckets"] = std::move(buckets);
      report.addResult(std::move(row));
    }

    const auto stats = service.planCacheStats();
    json::Object row;
    row["scenario"] = "throughput";
    row["phase"] = "plan-cache";
    row["hits"] = stats.hits;
    row["misses"] = stats.misses;
    row["invalidations"] = stats.invalidations;
    row["evictions"] = stats.evictions;
    report.addResult(std::move(row));
  }

  // ---- Build amortisation: cold vs warm solves/sec (wall clock) ----------
  {
    const matrix::GeneratedMatrix g = matrix::poisson2d5(12, 12);
    constexpr std::size_t kSolves = 8;
    const auto timeSolves = [&](solver::SolverService& service) {
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < kSolves; ++i) {
        const auto r =
            service.solve(g, cgConfig(), seededRhs(i, g.matrix.rows()));
        if (r.solve.status != solver::SolveStatus::Converged) {
          std::fprintf(stderr, "amortisation job failed: %s\n",
                       solver::toString(r.solve.status));
          std::exit(1);
        }
      }
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      return elapsed.count();
    };

    // Cold: cache disabled, every solve pays partitioning + emission.
    solver::SolverService cold(
        {.workers = 1, .tiles = 16, .planCacheCapacity = 0});
    const double coldSeconds = timeSolves(cold);

    // Warm: one untimed solve builds the pipeline, the timed ones lease it.
    solver::SolverService warm({.workers = 1, .tiles = 16});
    (void)warm.solve(g, cgConfig(), seededRhs(999, g.matrix.rows()));
    const double warmSeconds = timeSolves(warm);

    for (const auto& [phase, seconds] : {std::pair{"cold", coldSeconds},
                                         std::pair{"warm", warmSeconds}}) {
      json::Object row;
      row["scenario"] = "build-amortisation";
      row["phase"] = phase;
      row["solves"] = kSolves;
      row["wallSeconds"] = seconds;
      row["solvesPerWallSecond"] =
          seconds > 0 ? static_cast<double>(kSolves) / seconds : 0;
      report.addResult(std::move(row));
    }
    json::Object row;
    row["scenario"] = "build-amortisation";
    row["phase"] = "speedup";
    row["warmOverCold"] = warmSeconds > 0 ? coldSeconds / warmSeconds : 0;
    report.addResult(std::move(row));
  }

  // ---- Stress: burst past the queue bound, fault-injected slice ----------
  {
    solver::SolverService service(
        {.workers = 2,
         .tiles = 16,
         .retry = {.maxRetries = 1, .backoffBaseMs = 0.0, .backoffMaxMs = 0.0,
                   .jitter = 0.0},
         .admission = {.maxQueueDepth = 8},
         .breaker = {.failuresToOpen = 1000000}});
    const matrix::GeneratedMatrix g = matrix::poisson2d5(10, 10);

    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < 32; ++i) {
      solver::SolveJobOptions opts;
      opts.deadlineCycles = 5e8;
      if (i % 4 == 1) opts.faultPlan = stressPlan(i);
      ids.push_back(service.submit(g, cgConfig(),
                                   seededRhs(100 + i, g.matrix.rows()),
                                   std::move(opts)));
    }
    for (std::size_t id : ids) (void)service.wait(id);

    const auto& m = service.metrics();
    const double submitted = 32;
    json::Object row;
    row["scenario"] = "stress";
    row["submitted"] = submitted;
    row["accepted"] = m.counter("service.jobs.accepted");
    row["rejected"] = m.counter("service.jobs.rejected");
    row["retried"] = m.counter("service.jobs.retried");
    row["deadlineExceeded"] = m.counter("service.jobs.deadline_exceeded");
    row["degraded"] = m.counter("service.jobs.degraded");
    row["rejectionRate"] = m.counter("service.jobs.rejected") / submitted;
    row["retryRate"] = m.counter("service.jobs.retried") / submitted;
    report.addResult(std::move(row));
  }

  std::printf("%s\n", report.dump().c_str());
  return 0;
}
