// CFD-style pressure solve: the Poisson equation on a 3-D grid, the workload
// class the paper's introduction motivates (pressure correction in finite
// volume solvers).
//
// Demonstrates: SolveSession driving a JSON-configured MPIR + PBiCGStab +
// ILU(0) hierarchy, the refinement history, and the per-category cycle
// summary derived from the execution trace.
//
// Usage: ./example_poisson_solve [grid=24] [tiles=32] [--profile out.json]
//   --profile enables tile-level profiling and writes the report as JSON
//   (or self-contained HTML when the path ends in .html); inspect with
//   tools/graphene-prof.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graphene.hpp"

using namespace graphene;

int main(int argc, char** argv) {
  std::string profilePath;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profilePath = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t grid =
      positional.size() > 0 ? std::strtoul(positional[0], nullptr, 10) : 24;
  const std::size_t tiles =
      positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10) : 32;

  std::printf("Poisson %zu^3 pressure solve on %zu simulated tiles\n", grid,
              tiles);
  auto problem = matrix::poisson3d7(grid, grid, grid);
  auto stats = matrix::computeStats(problem.matrix);
  std::printf("matrix: %zu rows, %zu nnz (%.1f nnz/row)\n", stats.rows,
              stats.nnz, stats.avgNnzPerRow);

  solver::SolveSession session({.tiles = tiles});
  session.load(problem).configure(R"({
    "type": "mpir",
    "extendedType": "doubleword",
    "maxRefinements": 12,
    "tolerance": 1e-10,
    "inner": {
      "type": "bicgstab", "maxIterations": 40, "tolerance": 0,
      "preconditioner": {"type": "ilu"}
    }
  })");
  const auto& layout = session.matrix().layout();
  std::printf("halo: %zu separator cells in %zu regions, %zu blockwise "
              "transfers\n",
              layout.numSeparatorCells(), layout.regions.size(),
              layout.transfers.size());
  std::printf("solver: %s\n", session.solver().chainName().c_str());
  if (!profilePath.empty()) session.enableTileProfile();

  // RHS: a localised source/sink pair, as in a channel-flow pressure
  // correction.
  std::vector<double> rhs(session.matrix().rows(), 0.0);
  rhs[0] = 1.0;
  rhs[rhs.size() - 1] = -1.0;
  auto result = session.solve(rhs);

  auto& mpir = dynamic_cast<solver::MpirSolver&>(session.solver());
  const auto& hist = mpir.trueResidualHistory();
  std::printf("\nrefinement history (true residual, double-word):\n");
  for (const auto& rec : hist) {
    std::printf("  inner iteration %4zu : rel residual %.3e\n", rec.iteration,
                rec.residual);
  }

  std::printf("\n%s", support::traceSummaryTable(session.trace())
                          .render()
                          .c_str());
  std::printf("simulated solve time: %.3f ms\n",
              1e3 * result.simulatedSeconds);

  if (!profilePath.empty() && result.tileProfile) {
    std::ofstream out(profilePath);
    if (profilePath.size() > 5 &&
        profilePath.compare(profilePath.size() - 5, 5, ".html") == 0) {
      out << support::tileProfileToHtml(*result.tileProfile);
    } else {
      out << support::tileProfileToJson(*result.tileProfile).dump(2) << "\n";
    }
    std::printf("tile profile written to %s\n", profilePath.c_str());
  }

  return hist.empty() || hist.back().residual > 1e-8 ? 1 : 0;
}
