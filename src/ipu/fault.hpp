// Deterministic fault injection for the simulated IPU.
//
// Real fabrics misbehave: tile SRAM takes single-event upsets, exchange
// transfers arrive corrupted or not at all, and a tile can fall behind its
// BSP peers. The simulator must be able to reproduce such behaviour *exactly*
// — a fault plan is seeded, and two runs of the same program under the same
// plan inject byte-identical faults — so that the solver layer's recovery
// paths (restart, checkpoint/rollback) are testable.
//
// A FaultPlan is configured from JSON (the same mechanism that configures
// the solver hierarchy) and attached to a graph::Engine via setFaultPlan().
// With no plan attached the engine's hooks are a single null-pointer test:
// cycle counts and results are bit-identical to a build without the
// framework. Every injected event is appended to the engine Profile's
// structured fault log.
//
// Plan document shape:
//   {
//     "seed": 42,
//     "faults": [
//       {"type": "bitflip",          // SRAM single-event upset
//        "tensor": "cg_x",           // substring match on tensor names
//        "superstep": 120,           // compute superstep; -1/absent = any
//        "element": -1,              // flat index; -1 = seeded-random
//        "bit": 30,                  // -1 = seeded-random
//        "probability": 1.0,         // per matching opportunity
//        "skip": 0,                  // skip the first N opportunities
//        "count": 1},                // at most N injections
//       {"type": "stuck-zero", "tensor": "bicg_rho"},   // SRAM stuck-at-0
//       {"type": "exchange-drop",    "tensor": "halo", "count": 1},
//       {"type": "exchange-corrupt", "tensor": "halo", "bit": 30},
//       {"type": "stall", "tile": 3, "cycles": 10000, "superstep": 5}
//     ]
//   }
// Exchange rules match on the *destination* tensor of a transfer and trigger
// per transfer; their "superstep" is the exchange-superstep index. Dropped
// and corrupted transfers are still priced normally — the fabric spent the
// cycles, the payload was lost or damaged in flight.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ipu/profile.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace graphene::ipu {

/// What the engine exposes to the injector. Keeps this layer independent of
/// the graph substrate: the engine adapts its tensor storage behind this
/// interface.
class FaultSurface {
 public:
  virtual ~FaultSurface() = default;

  virtual std::size_t numTensors() = 0;
  virtual std::string tensorName(std::size_t tensor) = 0;
  virtual std::size_t tensorElements(std::size_t tensor) = 0;

  /// Flips one bit of an element's raw storage (an SEU). Bit indices wrap
  /// modulo the element width.
  virtual void flipBit(std::size_t tensor, std::size_t element,
                       unsigned bit) = 0;

  /// Forces an element to zero (a stuck-at-zero cell).
  virtual void zeroElement(std::size_t tensor, std::size_t element) = 0;

  /// The profile whose fault log receives injected events.
  virtual Profile& profile() = 0;
};

/// Fate of one exchange transfer under the active plan.
enum class TransferFate { Deliver, Drop, Corrupt };

class FaultPlan {
 public:
  struct Rule {
    enum class Kind { BitFlip, StuckZero, ExchangeDrop, ExchangeCorrupt,
                      Stall };
    Kind kind = Kind::BitFlip;
    std::string tensor;            // substring of the target tensor's name
    std::int64_t superstep = -1;   // exact superstep trigger; -1 = any
    double probability = 1.0;      // per matching opportunity
    std::int64_t element = -1;     // -1 = seeded-random within the tensor
    int bit = -1;                  // -1 = seeded-random
    std::size_t tile = 0;          // stall target
    double stallCycles = 0;
    std::size_t skip = 0;          // skip the first N matching opportunities
    std::size_t count = SIZE_MAX;  // injection budget
  };

  FaultPlan() = default;

  /// Builds a plan from a parsed JSON document (shape documented above).
  static FaultPlan fromJson(const json::Value& config);
  static FaultPlan fromJsonText(const std::string& text);

  void addRule(Rule rule) { rules_.push_back(rule); }

  bool enabled() const { return !rules_.empty(); }
  std::uint64_t seed() const { return seed_; }
  std::size_t injectedCount() const { return injected_; }

  /// Restores the plan to its just-built state (RNG re-seeded, budgets and
  /// skip counters reset) so the same plan object can drive a fresh run.
  void reset();

  // -- engine hooks ---------------------------------------------------------

  /// Called after compute superstep `index` completes, before its cycles are
  /// committed. Applies SRAM faults (bit flips / stuck-at-zero) and returns
  /// extra stall cycles to charge to the superstep's critical path.
  double afterComputeSuperstep(std::size_t index, FaultSurface& surface);

  /// Decides the fate of one exchange transfer destined for `dstTensor`.
  /// Drop events are logged here; a Corrupt verdict is followed by a
  /// corruptDelivered() call once the payload has landed.
  TransferFate onTransfer(std::size_t exchangeIndex,
                          std::size_t transferIndex, std::size_t dstTensor,
                          FaultSurface& surface);

  /// Flips one bit somewhere in the delivered range [dstFlat, dstFlat+count)
  /// of a transfer that onTransfer() marked Corrupt, and logs the event.
  void corruptDelivered(std::size_t exchangeIndex, std::size_t dstTensor,
                        std::size_t dstFlat, std::size_t count,
                        FaultSurface& surface);

 private:
  struct RuleState {
    std::size_t injected = 0;
    std::size_t skipped = 0;
    // Tensor-name match cache; rebuilt when the tensor count changes.
    std::vector<std::size_t> matches;
    std::size_t matchedAt = SIZE_MAX;
  };

  bool fires(const Rule& rule, RuleState& state, std::int64_t index);
  const std::vector<std::size_t>& matchingTensors(const Rule& rule,
                                                  RuleState& state,
                                                  FaultSurface& surface);

  std::uint64_t seed_ = 0x9E3779B97F4A7C15ull;
  Rng rng_{seed_};
  std::vector<Rule> rules_;
  std::vector<RuleState> states_;
  std::size_t injected_ = 0;
  int pendingCorruptBit_ = -1;  // bit choice of the last Corrupt verdict
};

/// Serialises a fault log (e.g. `engine.profile().faultEvents`) to JSON.
json::Value faultEventsToJson(const std::vector<FaultEvent>& events);

/// Human-readable one-line-per-event rendering of a fault log.
std::string formatFaultEvents(const std::vector<FaultEvent>& events);

}  // namespace graphene::ipu
