#include "support/log_sink.hpp"

#include "support/error.hpp"

namespace graphene::support {

LogSink::LogSink(const std::string& path)
    : file_(path, std::ios::out | std::ios::app) {
  GRAPHENE_CHECK(file_.is_open(), "LogSink: cannot open '", path,
                 "' for append");
  os_ = &file_;
}

LogSink::LogSink(std::ostream& os) : os_(&os) {}

void LogSink::log(const std::string& event, std::size_t jobId,
                  json::Object fields) {
  json::Object line;
  line["event"] = event;
  if (jobId != SIZE_MAX) line["jobId"] = jobId;
  for (auto& [k, v] : fields) {
    if (k == "seq" || k == "event" || k == "jobId") continue;
    line[k] = std::move(v);
  }
  std::lock_guard<std::mutex> lock(mu_);
  line["seq"] = seq_++;
  // One complete line per call, flushed: a reader tailing the file never
  // sees a torn object, and a crash loses nothing already logged.
  (*os_) << json::Value(std::move(line)).dump() << "\n";
  os_->flush();
}

std::size_t LogSink::written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace graphene::support
