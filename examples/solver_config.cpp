// JSON-configured nested solvers (§V): reads a solver hierarchy from a JSON
// file (or uses a built-in default), builds it with the factory, and solves
// a circuit-simulation system with it.
//
// Usage: ./example_solver_config [config.json]
//
// Example config file:
//   {
//     "type": "bicgstab", "maxIterations": 300, "tolerance": 1e-8,
//     "preconditioner": {"type": "gauss-seidel", "sweeps": 2}
//   }
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/engine.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"

using namespace graphene;

int main(int argc, char** argv) {
  std::string configText = R"({
    "type": "bicgstab",
    "maxIterations": 300,
    "tolerance": 1e-7,
    "preconditioner": {"type": "dilu"}
  })";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in.good()) {
      std::fprintf(stderr, "cannot open config '%s'\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    configText = ss.str();
  }

  json::Value config = json::parse(configText);
  std::printf("solver configuration:\n%s\n\n", config.dump(2).c_str());

  const std::size_t tiles = 24;
  auto problem = matrix::g3CircuitLike(6000);
  std::printf("matrix: %s, %zu rows, %zu nnz\n", problem.name.c_str(),
              problem.matrix.rows(), problem.matrix.nnz());

  dsl::Context ctx(ipu::IpuTarget::testTarget(tiles));
  auto layout = partition::Partitioner(ipu::Topology::singleIpu(tiles))
                    .layout(problem);
  solver::DistMatrix A(problem.matrix, std::move(layout));
  dsl::Tensor x = A.makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = A.makeVector(dsl::DType::Float32, "b");

  auto solver = solver::makeSolver(config);
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  Rng rng(7);
  std::vector<double> rhs(problem.matrix.rows());
  for (double& v : rhs) v = rng.uniform(-1.0, 1.0);
  A.writeVector(engine, b, rhs);
  engine.run(ctx.program());

  const auto& hist = solver->history();
  if (hist.empty()) {
    std::printf("solver recorded no iterations\n");
    return 1;
  }
  std::printf("\nconverged to %.3e in %zu iterations "
              "(simulated %.2f ms on %zu tiles)\n",
              hist.back().residual, hist.size(),
              1e3 * engine.elapsedSeconds(), tiles);
  // Print a sparse convergence trace.
  for (std::size_t i = 0; i < hist.size();
       i += std::max<std::size_t>(1, hist.size() / 10)) {
    std::printf("  iter %4zu  rel residual %.3e\n", hist[i].iteration,
                hist[i].residual);
  }
  return hist.back().residual < 1e-5 ? 0 : 1;
}
