// CFD-style pressure solve: the Poisson equation on a 3-D grid, the workload
// class the paper's introduction motivates (pressure correction in finite
// volume solvers).
//
// Demonstrates: grid partitioning, the §IV halo layout, a JSON-configured
// MPIR + PBiCGStab + ILU(0) solver, and per-category cycle profiling.
//
// Usage: ./example_poisson_solve [grid=24] [tiles=32]
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "graph/engine.hpp"
#include "matrix/generators.hpp"
#include "partition/partition.hpp"
#include "solver/solvers.hpp"

using namespace graphene;

int main(int argc, char** argv) {
  const std::size_t grid = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::size_t tiles = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 32;

  std::printf("Poisson %zu^3 pressure solve on %zu simulated tiles\n", grid,
              tiles);
  auto problem = matrix::poisson3d7(grid, grid, grid);
  auto stats = matrix::computeStats(problem.matrix);
  std::printf("matrix: %zu rows, %zu nnz (%.1f nnz/row)\n", stats.rows,
              stats.nnz, stats.avgNnzPerRow);

  dsl::Context ctx(ipu::IpuTarget::testTarget(tiles));
  auto layout = partition::buildLayout(
      problem.matrix, partition::partitionAuto(problem, tiles), tiles);
  std::printf("halo: %zu separator cells in %zu regions, %zu blockwise "
              "transfers\n",
              layout.numSeparatorCells(), layout.regions.size(),
              layout.transfers.size());
  solver::DistMatrix A(problem.matrix, std::move(layout));

  dsl::Tensor x = A.makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = A.makeVector(dsl::DType::Float32, "b");

  auto solver = solver::makeSolverFromString(R"({
    "type": "mpir",
    "extendedType": "doubleword",
    "maxRefinements": 12,
    "tolerance": 1e-10,
    "inner": {
      "type": "bicgstab", "maxIterations": 40, "tolerance": 0,
      "preconditioner": {"type": "ilu"}
    }
  })");
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  A.upload(engine);
  // RHS: a localised source/sink pair, as in a channel-flow pressure
  // correction.
  std::vector<double> rhs(problem.matrix.rows(), 0.0);
  rhs[0] = 1.0;
  rhs[rhs.size() - 1] = -1.0;
  A.writeVector(engine, b, rhs);
  engine.run(ctx.program());

  auto* mpir = dynamic_cast<solver::MpirSolver*>(solver.get());
  const auto& hist = mpir->trueResidualHistory();
  std::printf("\nrefinement history (true residual, double-word):\n");
  for (const auto& rec : hist) {
    std::printf("  inner iteration %4zu : rel residual %.3e\n", rec.iteration,
                rec.residual);
  }

  const auto& prof = engine.profile();
  std::printf("\ncycle breakdown:\n");
  for (const auto& [category, cycles] : prof.computeCycles) {
    std::printf("  %-20s %12.0f cycles (%4.1f%%)\n", category.c_str(), cycles,
                100.0 * cycles / prof.totalCycles());
  }
  std::printf("  %-20s %12.0f cycles (%4.1f%%)\n", "exchange",
              prof.exchangeCycles,
              100.0 * prof.exchangeCycles / prof.totalCycles());
  std::printf("simulated solve time: %.3f ms\n",
              1e3 * engine.elapsedSeconds());

  return hist.empty() || hist.back().residual > 1e-8 ? 1 : 0;
}
