// Identity and Jacobi solvers.
#include "solver/solvers.hpp"

namespace graphene::solver {

using dsl::Expression;

void IdentitySolver::apply(DistMatrix& a, Tensor& z, Tensor& r) {
  (void)a;
  z = Expression(r);
}

void JacobiSolver::apply(DistMatrix& a, Tensor& z, Tensor& r) {
  z = Expression(0.0f);
  Tensor res = a.makeVector(DType::Float32, "jacobi_res");
  dsl::Repeat(iterations_, [&] {
    a.spmv(res, z);
    res = Expression(r) - Expression(res);
    z = Expression(z) +
        Expression(omega_) * Expression(res) / Expression(a.diagonal());
  });
}

}  // namespace graphene::solver
