// Quickstart: solve a sparse system in three calls.
//
// SolveSession is the one-stop API: load() partitions the matrix over the
// simulated IPU's tiles and builds the device structures, configure() builds
// the (possibly nested) solver from JSON, solve() runs it and hands back the
// solution, the convergence history and a full execution trace.
//
// Build & run:  ./example_quickstart [--trace out.json] [--profile out.json]
//                                    [--metrics-text]
//   --trace writes the merged execution timeline (compute/exchange/sync
//   spans, solver iterations) as Chrome trace_event JSON — load it into
//   chrome://tracing or https://ui.perfetto.dev.
//   --profile enables tile-level profiling and writes the report (per-tile
//   cycles, traffic matrix, SRAM) as JSON — or as a self-contained HTML
//   page when the path ends in .html. Inspect with tools/graphene-prof.
//   --metrics-text prints the run's metric counters/gauges in Prometheus
//   text exposition format.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "graphene.hpp"

using namespace graphene;

int main(int argc, char** argv) {
  std::string tracePath;
  std::string profilePath;
  bool metricsText = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profilePath = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-text") == 0) {
      metricsText = true;
    }
  }

  // A 2-D Poisson problem distributed over 16 simulated tiles, solved with
  // ILU(0)-preconditioned CG.
  solver::SolveSession session({.tiles = 16});
  session.load(matrix::poisson2d5(48, 48))
      .configure(R"({
        "type": "cg",
        "tolerance": 1e-6,
        "maxIterations": 300,
        "preconditioner": {"type": "ilu"}
      })");
  if (!profilePath.empty()) session.enableTileProfile();

  std::vector<double> rhs(session.matrix().rows(), 1.0);
  auto result = session.solve(rhs);

  std::printf("solver       = %s\n", session.solver().chainName().c_str());
  std::printf("status       = %s\n", toString(result.solve.status));
  std::printf("iterations   = %zu (rel residual %.3e)\n",
              result.solve.iterations, result.solve.finalResidual);
  std::printf("time on IPU  = %.3f ms (simulated)\n",
              1e3 * result.simulatedSeconds);

  // The same trace that feeds the Chrome export renders as a per-category
  // cycle summary (the paper's Table IV granularity).
  std::printf("\n%s", support::traceSummaryTable(session.trace())
                          .render()
                          .c_str());

  if (metricsText) {
    std::printf("\n%s", support::metricsToPrometheusText(
                            session.profile().metrics)
                            .c_str());
  }

  if (!tracePath.empty()) {
    std::ofstream out(tracePath);
    out << session.traceChromeJson().dump(2) << "\n";
    std::printf("\ntrace written to %s (%zu events)\n", tracePath.c_str(),
                session.trace().events().size());
  }
  if (!profilePath.empty() && result.tileProfile) {
    std::ofstream out(profilePath);
    if (profilePath.size() > 5 &&
        profilePath.compare(profilePath.size() - 5, 5, ".html") == 0) {
      out << support::tileProfileToHtml(*result.tileProfile);
    } else {
      out << support::tileProfileToJson(*result.tileProfile).dump(2) << "\n";
    }
    std::printf("\ntile profile written to %s\n", profilePath.c_str());
  }
  return result.solve.status == solver::SolveStatus::Converged ? 0 : 1;
}
