// Unit tests for the CodeDSL interpreter's scalar semantics and cycle
// accounting behaviour.
#include <gtest/gtest.h>

#include "dsl/interpreter.hpp"
#include "dsl/tensor.hpp"
#include "graph/engine.hpp"

using namespace graphene;
using namespace graphene::dsl;
using graph::Scalar;
using twofloat::Float2;
using twofloat::SoftDouble;

// ---------------------------------------------------------------------------
// evalBinaryScalar / evalUnaryScalar
// ---------------------------------------------------------------------------

TEST(ScalarOps, IntegerArithmetic) {
  EXPECT_EQ(evalBinaryScalar(BinOp::Add, Scalar(7), Scalar(5)).asInt(), 12);
  EXPECT_EQ(evalBinaryScalar(BinOp::Sub, Scalar(7), Scalar(5)).asInt(), 2);
  EXPECT_EQ(evalBinaryScalar(BinOp::Mul, Scalar(7), Scalar(5)).asInt(), 35);
  EXPECT_EQ(evalBinaryScalar(BinOp::Div, Scalar(7), Scalar(5)).asInt(), 1);
  EXPECT_EQ(evalBinaryScalar(BinOp::Mod, Scalar(7), Scalar(5)).asInt(), 2);
  EXPECT_EQ(evalBinaryScalar(BinOp::Min, Scalar(7), Scalar(5)).asInt(), 5);
  EXPECT_EQ(evalBinaryScalar(BinOp::Max, Scalar(7), Scalar(5)).asInt(), 7);
}

TEST(ScalarOps, IntegerDivisionByZeroThrows) {
  EXPECT_THROW(evalBinaryScalar(BinOp::Div, Scalar(1), Scalar(0)), Error);
  EXPECT_THROW(evalBinaryScalar(BinOp::Mod, Scalar(1), Scalar(0)), Error);
}

TEST(ScalarOps, ModOnFloatsThrows) {
  EXPECT_THROW(evalBinaryScalar(BinOp::Mod, Scalar(1.0f), Scalar(2.0f)),
               Error);
}

TEST(ScalarOps, ComparisonsYieldBool) {
  auto r = evalBinaryScalar(BinOp::Lt, Scalar(1.0f), Scalar(2.0f));
  EXPECT_EQ(r.type(), DType::Bool);
  EXPECT_TRUE(r.asBool());
  EXPECT_FALSE(evalBinaryScalar(BinOp::Gt, Scalar(1.0f), Scalar(2.0f)).asBool());
  EXPECT_TRUE(evalBinaryScalar(BinOp::Ne, Scalar(1), Scalar(2)).asBool());
}

TEST(ScalarOps, MixedTypePromotion) {
  // int * float -> float
  auto r1 = evalBinaryScalar(BinOp::Mul, Scalar(3), Scalar(0.5f));
  EXPECT_EQ(r1.type(), DType::Float32);
  EXPECT_FLOAT_EQ(r1.asFloat(), 1.5f);
  // float + double-word -> double-word
  auto r2 = evalBinaryScalar(BinOp::Add, Scalar(1.0f),
                             Scalar(Float2::fromWide(1e-9)));
  EXPECT_EQ(r2.type(), DType::DoubleWord);
  EXPECT_NEAR(r2.toHostDouble(), 1.0 + 1e-9, 1e-15);
  // double-word + float64 -> float64 (widest wins)
  auto r3 = evalBinaryScalar(BinOp::Add, Scalar(Float2::fromWide(1.0)),
                             Scalar(SoftDouble::fromDouble(2.0)));
  EXPECT_EQ(r3.type(), DType::Float64);
  EXPECT_DOUBLE_EQ(r3.toHostDouble(), 3.0);
  // bool arithmetic promotes to int
  auto r4 = evalBinaryScalar(BinOp::Add, Scalar(true), Scalar(true));
  EXPECT_EQ(r4.type(), DType::Int32);
  EXPECT_EQ(r4.asInt(), 2);
}

TEST(ScalarOps, LogicOperatorsUseTruthiness) {
  EXPECT_TRUE(evalBinaryScalar(BinOp::And, Scalar(1.0f), Scalar(2)).asBool());
  EXPECT_FALSE(evalBinaryScalar(BinOp::And, Scalar(0.0f), Scalar(2)).asBool());
  EXPECT_TRUE(evalBinaryScalar(BinOp::Or, Scalar(0), Scalar(true)).asBool());
}

TEST(ScalarOps, UnaryOperations) {
  EXPECT_FLOAT_EQ(evalUnaryScalar(UnOp::Neg, Scalar(2.5f)).asFloat(), -2.5f);
  EXPECT_EQ(evalUnaryScalar(UnOp::Neg, Scalar(-3)).asInt(), 3);
  EXPECT_FLOAT_EQ(evalUnaryScalar(UnOp::Abs, Scalar(-2.5f)).asFloat(), 2.5f);
  EXPECT_FLOAT_EQ(evalUnaryScalar(UnOp::Sqrt, Scalar(9.0f)).asFloat(), 3.0f);
  EXPECT_TRUE(evalUnaryScalar(UnOp::Not, Scalar(false)).asBool());
  // Extended types route through their software implementations.
  auto dw = evalUnaryScalar(UnOp::Sqrt, Scalar(Float2::fromWide(2.0)));
  EXPECT_NEAR(dw.toHostDouble(), std::sqrt(2.0), 1e-13);
  auto sd = evalUnaryScalar(UnOp::Sqrt, Scalar(SoftDouble::fromDouble(2.0)));
  EXPECT_NEAR(sd.toHostDouble(), std::sqrt(2.0), 1e-15);
}

// ---------------------------------------------------------------------------
// Cycle accounting properties (via full DSL programs)
// ---------------------------------------------------------------------------

namespace {

double cyclesOf(DType type, std::size_t n, std::size_t tiles = 1) {
  Context ctx(ipu::IpuTarget::testTarget(tiles));
  Tensor a(type, n, "a");
  Tensor b(type, n, "b");
  Tensor c(type, n, "c");
  c = Expression(a) * Expression(b) + Expression(a);
  graph::Engine e(ctx.graph());
  e.run(ctx.program());
  return e.profile().totalComputeCycles();
}

}  // namespace

TEST(CycleAccounting, ExtendedTypesCostMore) {
  double f32 = cyclesOf(DType::Float32, 300);
  double dw = cyclesOf(DType::DoubleWord, 300);
  double f64 = cyclesOf(DType::Float64, 300);
  EXPECT_GT(dw, 3 * f32);   // Table I: ~20x on pure flops, loads dilute
  EXPECT_GT(f64, 2.5 * dw); // f64 emulation ~8x DW on flops
}

TEST(CycleAccounting, CyclesScaleLinearlyWithElements) {
  double small = cyclesOf(DType::Float32, 600);
  double large = cyclesOf(DType::Float32, 2400);
  EXPECT_NEAR(large / small, 4.0, 0.4);
}

TEST(CycleAccounting, WorkSplitsAcrossTiles) {
  // Same total elements on 1 vs 4 tiles: the BSP superstep costs the
  // slowest tile, so 4 tiles ≈ 1/4 the cycles.
  double one = cyclesOf(DType::Float32, 2400, 1);
  double four = cyclesOf(DType::Float32, 2400, 4);
  EXPECT_NEAR(one / four, 4.0, 0.5);
}

TEST(CycleAccounting, SelectEvaluatesOnlyChosenSide) {
  // Guarded halo-style indexing must not read out of bounds AND must not
  // charge for the untaken (expensive) branch.
  Context ctx(ipu::IpuTarget::testTarget(1));
  Tensor flags(DType::Int32, 64, "flags");
  Tensor cheap(DType::Float32, 64, "cheap");
  Tensor out(DType::Float32, 64, "out");
  Execute({flags, cheap, out}, [](Value f, Value c, Value o) {
    For(0, o.size(), 1, [&](Value i) {
      // Out-of-range index on the untaken side: must never be evaluated.
      o[i] = Select(f[i] == 0, c[i], c[i - 1000000]);
    });
  });
  graph::Engine e(ctx.graph());
  // flags all zero → always take the first branch.
  e.run(ctx.program());
  SUCCEED();
}

TEST(CycleAccounting, WhileConditionReevaluatedEachIteration) {
  Context ctx(ipu::IpuTarget::testTarget(1));
  Tensor out(DType::Int32, 1, "out");
  Execute({out}, [](Value o) {
    Value i = 0;
    Value limit = 5;
    While([&] { return i < limit; }, [&] {
      i = i + 1;
      limit = limit - 1;  // moving target: must terminate at crossover
    });
    o[0] = i;
  });
  graph::Engine e(ctx.graph());
  e.run(ctx.program());
  EXPECT_EQ(e.readTensor<std::int32_t>(out.id())[0], 3);
}

TEST(CycleAccounting, NegativeIndexDetected) {
  Context ctx(ipu::IpuTarget::testTarget(1));
  Tensor v(DType::Float32, 8, "v");
  Execute({v}, [](Value t) {
    Value i = 0;
    t[i - 5] = 1.0f;
  });
  graph::Engine e(ctx.graph());
  EXPECT_THROW(e.run(ctx.program()), Error);
}

TEST(CycleAccounting, MixedDwFpOpsPricedBelowFullDw) {
  // float32 coefficient times double-word vector (the MPIR residual inner
  // product) must be cheaper than full DW×DW (§III-D: DWTimesFP vs
  // DWTimesDW).
  auto run = [](bool mixed) {
    Context ctx(ipu::IpuTarget::testTarget(1));
    Tensor a(mixed ? DType::Float32 : DType::DoubleWord, 512, "a");
    Tensor b(DType::DoubleWord, 512, "b");
    Tensor c(DType::DoubleWord, 512, "c");
    c = Expression(a) * Expression(b);
    graph::Engine e(ctx.graph());
    e.run(ctx.program());
    return e.profile().totalComputeCycles();
  };
  EXPECT_LT(run(true), run(false));
}
