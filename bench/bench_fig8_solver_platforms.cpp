// Figure 8: time for the (MPIR-)PBiCGStab+ILU(0) solver to reach a relative
// residual of 1e-9 on IPU vs CPU vs GPU.
//
// Scale handling (as in bench_fig7): the stand-ins are sized to the real
// machine's rows/tile, so the simulated per-iteration time matches the real
// IPU's; CPU/GPU per-iteration times are modelled at the full Table II
// sizes. Iteration counts are *measured* on the same stand-in system —
// MPIR+block-Jacobi-ILU(0) on the simulated IPU vs double-precision
// BiCGStab+global-ILU(0) on the host (the HYPRE stand-in). The stand-ins use
// a relaxed conditioning (see generators.hpp shiftScale) so the scaled-down
// systems show the full-size iteration regime.
//
// Paper result (§VI-D.2): IPU beats GPU 5–36x but CPU only 3–7x — the CPU
// catches up because global ILU(0) preconditions far better than the
// decomposed block ILU, and because GPU triangular solves pay per-level
// kernel launches.
#include <cmath>
#include <cstdio>

#include "baseline/cpu_solver.hpp"
#include "baseline/platform.hpp"
#include "bench_common.hpp"
#include "levelset/levelset.hpp"

using namespace graphene;

int main() {
  bench::printHeader(
      "Figure 8 — IR-PBiCGStab+ILU(0) to 1e-9 across platforms",
      "IPU beats GPU 5-36x but CPU only 3-7x (paper Fig. 8, §VI-D.2)");

  struct Case {
    const char* name;
    std::size_t paperRows, paperNnz;
  };
  const Case cases[] = {{"g3_circuit", 1600000, 7700000},
                        {"af_shell7", 500000, 17600000},
                        {"geo_1438", 1400000, 63100000},
                        {"hook_1498", 1500000, 60900000}};
  const std::size_t realTiles = 5888;
  const std::size_t tilesPerIpu = 16, ipus = 4;
  const std::size_t simTiles = tilesPerIpu * ipus;
  const double tol = 1e-9;
  const double shiftScale = 300.0;  // size-matched conditioning

  std::printf("simulated M2000: %zu tiles; stand-ins at the real rows/tile; "
              "target rel. residual %.0e\n\n",
              simTiles, tol);

  TextTable t({"matrix", "IPU iters", "IPU (sim)", "CPU iters", "CPU (model)",
               "GPU (model)", "IPU vs CPU", "IPU vs GPU"});
  bool converged = true, gpuBand = true;
  double worstCpuRatio = 1e30;

  for (const Case& c : cases) {
    const std::size_t rowsPerTile = c.paperRows / realTiles;
    auto g =
        matrix::makeBenchmarkMatrix(c.name, rowsPerTile * simTiles, shiftScale);
    auto st = matrix::computeStats(g.matrix);

    // ---- IPU: actual simulated MPIR solve ----
    ipu::IpuTarget target;
    target.tilesPerIpu = tilesPerIpu;
    target.numIpus = ipus;
    bench::DistSystem s = bench::makeSystem(g, target);
    dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
    dsl::Tensor b = s.A->makeVector(dsl::DType::Float32, "b");
    auto solver = solver::makeSolverFromString(R"({
      "type":"mpir","extendedType":"doubleword","maxRefinements":40,
      "tolerance":1e-9,
      "inner":{"type":"bicgstab","maxIterations":20,"tolerance":0,
               "preconditioner":{"type":"ilu"}}})");
    solver->apply(*s.A, x, b);
    auto rhs = bench::randomRhs(g.matrix.rows(), 17);
    auto prof = bench::runProgram(s, s.ctx->program(), rhs, b);
    // Normalise compute to the paper's nnz/row (stand-ins are sparser).
    const double nnzNorm =
        (static_cast<double>(c.paperNnz) / static_cast<double>(c.paperRows)) /
        st.avgNnzPerRow;
    const double ipuSec =
        target.secondsFromCycles(prof.totalComputeCycles() * nnzNorm +
                                 prof.exchangeCycles + prof.syncCycles);
    auto* mpir = dynamic_cast<solver::MpirSolver*>(solver.get());
    const std::size_t ipuIters = mpir->inner()->history().size();
    const double reached = mpir->trueResidualHistory().empty()
                               ? 1.0
                               : mpir->trueResidualHistory().back().residual;
    if (reached > tol * 10) converged = false;

    // ---- CPU/GPU: measured global-ILU iterations, per-iteration rooflines
    //      at the paper's full sizes ----
    auto host = baseline::hostBiCgStab(g.matrix, rhs, tol, 5000, true);
    auto levels = levelset::buildForwardLevels(g.matrix);
    // The level-set depth grows with the mesh extent: scale the stand-in's
    // level count to the full problem size (cube-root law for these 3-D
    // discretisations).
    // Capped: production libraries reorder (colouring/RCM) long dependency
    // chains, so effective level counts saturate in the high hundreds.
    const std::size_t paperLevels = std::min<std::size_t>(
        600, static_cast<std::size_t>(
                 static_cast<double>(levels.numLevels()) *
                 std::cbrt(static_cast<double>(c.paperRows) /
                           static_cast<double>(st.rows))));
    const double cpuSec =
        static_cast<double>(host.iterations) *
        baseline::bicgstabIterationSeconds(baseline::xeon8470q(), c.paperRows,
                                           c.paperNnz, paperLevels, true);
    const double gpuSec =
        static_cast<double>(host.iterations) *
        baseline::bicgstabIterationSeconds(baseline::h100Sxm(), c.paperRows,
                                           c.paperNnz, paperLevels, true);

    const double vsCpu = cpuSec / ipuSec;
    const double vsGpu = gpuSec / ipuSec;
    worstCpuRatio = std::min(worstCpuRatio, vsCpu);
    if (vsGpu < 2 || vsGpu > 60) gpuBand = false;

    t.addRow({std::string(c.name) + (reached <= tol * 10 ? "" : " (!)"),
              std::to_string(ipuIters), formatTime(ipuSec),
              std::to_string(host.iterations), formatTime(cpuSec),
              formatTime(gpuSec), formatSig(vsCpu, 3) + "x",
              formatSig(vsGpu, 3) + "x"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper bands: IPU vs GPU 5-36x, IPU vs CPU only 3-7x\n");
  std::printf("check: every configuration reached the target residual: %s\n",
              converged ? "PASS" : "FAIL");
  std::printf("check: the CPU solver gap (%0.1fx min) is far below its "
              "50-120x SpMV gap — the §VI-D global-ILU crossover: %s\n",
              worstCpuRatio, worstCpuRatio < 30 ? "PASS" : "FAIL");
  std::printf("check: IPU vs GPU stays within the paper's wide 5-36x band "
              "(2-60x tolerated): %s\n",
              gpuBand ? "PASS" : "FAIL");
  return converged && worstCpuRatio < 30 && gpuBand ? 0 : 1;
}
