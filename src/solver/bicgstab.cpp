// Preconditioned BiCGStab (§V-C), following the paper's Fig. 4 DSL listing.
//
// The loop is hardened against numerical faults: a host guard checks the
// residual and the rho recurrence scalar every iteration. A collapsed rho
// (|rho| ≤ breakdownTolerance·‖b‖²) or a NaN/diverged residual triggers an
// automatic restart from the last checkpoint; once the restart budget is
// exhausted the solve ends with a typed SolveStatus (Breakdown / Diverged /
// NanDetected) instead of a garbage history.
#include <cmath>

#include "solver/solvers.hpp"
#include "support/trace.hpp"

namespace graphene::solver {

using dsl::Dot;
using dsl::Expression;
using dsl::Tensor;

void BiCgStabSolver::apply(DistMatrix& a, Tensor& x, Tensor& b) {
  precond_->ensureSetup(a);
  if (robust_.abft) a.enableAbft(robust_.abftTolerance);

  // Zero initial guess: r0 = b − A·x = b.
  x = Expression(0.0f);
  Tensor rA0 = a.makeVector(DType::Float32, "bicg_shadow");
  rA0 = Expression(b);  // deep copy: the shadow residual stays fixed
  Tensor rA = a.makeVector(DType::Float32, "bicg_resid");
  rA = Expression(b);
  Tensor pA = a.makeVector(DType::Float32, "bicg_p");
  pA = Expression(0.0f);
  Tensor yA = a.makeVector(DType::Float32, "bicg_y");
  Tensor zA = a.makeVector(DType::Float32, "bicg_z");
  Tensor AyA = a.makeVector(DType::Float32, "bicg_Ay");
  AyA = Expression(0.0f);
  Tensor sA = a.makeVector(DType::Float32, "bicg_s");
  Tensor tA = a.makeVector(DType::Float32, "bicg_t");

  Tensor bNormSq = Dot(b, b);
  Tensor rA0rAold = Tensor(Expression(bNormSq));
  Tensor rA0rA = Tensor::scalar(DType::Float32, "bicg_rho");
  Tensor alpha = Tensor::scalar(DType::Float32, "bicg_alpha");
  alpha = Expression(1.0f);
  Tensor omega = Tensor::scalar(DType::Float32, "bicg_omega");
  omega = Expression(1.0f);
  Tensor beta = Tensor::scalar(DType::Float32, "bicg_beta");
  Tensor resNormSq = Tensor(Expression(bNormSq));
  Tensor iter = Tensor::scalar(DType::Int32, "bicg_iter");
  iter = Expression(0);

  // Self-healing state: host-controlled abort flag, restart request flag,
  // and the checkpointed iterate restarts re-seed from.
  Tensor ok = Tensor::scalar(DType::Int32, "bicg_ok");
  ok = Expression(1);
  Tensor restart = Tensor::scalar(DType::Int32, "bicg_restart");
  restart = Expression(0);
  const bool recovery = robust_.maxRestarts > 0 && robust_.checkpointEvery > 0;
  std::optional<Tensor> xCkpt;
  if (recovery) {
    xCkpt.emplace(a.makeVector(DType::Float32, "bicg_ckpt"));
    *xCkpt = Expression(x);  // x0 = 0 is always a valid restart point
  }
  stateId_ = recovery ? xCkpt->id() : x.id();
  // ABFT dot-reduction check: a second, independently emitted reduction of
  // the same operand (bit-identical fault-free).
  std::optional<Tensor> resDup;
  if (robust_.abft) {
    resDup.emplace(Tensor::scalar(DType::Float32, "bicg_rrdup"));
  }

  const float tol2 = static_cast<float>(tolerance_ * tolerance_);
  auto histPtr = history_;
  auto resPtr = result_;
  const RobustnessOptions opts = robust_;
  const double tolerance = tolerance_;
  graph::TensorId resId = resNormSq.id(), bId = bNormSq.id();
  graph::TensorId rhoId = rA0rA.id(), okId = ok.id(),
                  restartId = restart.id(), iterId = iter.id();
  graph::TensorId abftId =
      robust_.abft ? a.abftFlagId() : graph::kInvalidTensor;
  graph::TensorId dupId = robust_.abft ? resDup->id() : graph::kInvalidTensor;

  // Runs at execution time, before the loop: (re)arm the structured result.
  // The history is deliberately NOT cleared here — as an MPIR inner solver
  // this callback runs every refinement, and the history's cumulative
  // iteration count is what the refinement records are keyed on.
  dsl::HostCall([resPtr](graph::Engine&) {
    *resPtr = SolveResult{};
    resPtr->status = SolveStatus::Running;
  });

  Expression keepGoing =
      tolerance_ > 0.0
          ? Expression(iter) < static_cast<int>(maxIterations_) &&
                Expression(resNormSq) > Expression(tol2) * Expression(bNormSq)
          : Expression(iter) < static_cast<int>(maxIterations_);

  // Breakdown guards (the paper's implementation has "early exits due to
  // convergence or singularity"): once the float32 residual hits its floor,
  // the rho / omega denominators collapse to zero — Select keeps the update
  // coefficients finite and the iteration merely stagnates instead of
  // producing NaNs. The host guard below additionally *reports* a collapsed
  // rho as SolveStatus::Breakdown (after exhausting the restart budget).
  Tensor denom = Tensor::scalar(DType::Float32, "bicg_denom");
  Tensor tt = Tensor::scalar(DType::Float32, "bicg_tt");

  dsl::While(keepGoing && Expression(ok) > Expression(0), [&] {
    if (recovery) {
      // Re-seed the Krylov recurrence from the checkpointed iterate: the
      // shadow residual is re-anchored to the fresh true residual and all
      // recurrence scalars return to their iteration-0 values.
      dsl::If(Expression(restart) > Expression(0), [&] {
        x = Expression(*xCkpt);
        a.spmv(sA, x);
        rA = Expression(b) - Expression(sA);
        rA0 = Expression(rA);
        pA = Expression(0.0f);
        AyA = Expression(0.0f);
        alpha = Expression(1.0f);
        omega = Expression(1.0f);
        rA0rAold = Dot(rA, rA);
        resNormSq = Expression(rA0rAold);
        restart = Expression(0);
      });
    }
    rA0rA = Dot(rA0, rA);
    beta = dsl::Select(
        Abs(Expression(rA0rAold)) * Abs(Expression(omega)) > Expression(0.0f),
        (Expression(rA0rA) / Expression(rA0rAold)) *
            (Expression(alpha) / Expression(omega)),
        Expression(0.0f));
    pA = Expression(rA) +
         Expression(beta) * (Expression(pA) - Expression(omega) * Expression(AyA));
    precond_->apply(a, yA, pA);
    a.spmv(AyA, yA);
    denom = Dot(rA0, AyA);
    alpha = dsl::Select(Abs(Expression(denom)) > Expression(0.0f),
                        Expression(rA0rA) / Expression(denom),
                        Expression(0.0f));
    sA = Expression(rA) - Expression(alpha) * Expression(AyA);
    precond_->apply(a, zA, sA);
    a.spmv(tA, zA);
    tt = Dot(tA, tA);
    omega = dsl::Select(Expression(tt) > Expression(0.0f),
                        Dot(tA, sA) / Expression(tt), Expression(0.0f));
    x = Expression(x) + Expression(alpha) * Expression(yA) +
        Expression(omega) * Expression(zA);
    rA = Expression(sA) - Expression(omega) * Expression(tA);
    rA0rAold = Expression(rA0rA);
    iter = Expression(iter) + 1;
    resNormSq = Dot(rA, rA);
    if (robust_.abft) *resDup = Dot(rA, rA);
    if (recovery) {
      dsl::If(Expression(iter) %
                      static_cast<int>(robust_.checkpointEvery) ==
                  Expression(0),
              [&] { *xCkpt = Expression(x); });
    }
    dsl::HostCall([histPtr, resPtr, opts, recovery, tolerance, resId, bId,
                   rhoId, okId, restartId, iterId, abftId,
                   dupId](graph::Engine& e) {
      const double rr = e.readScalar(resId).toHostDouble();
      const double bb = e.readScalar(bId).toHostDouble();
      const double rho = e.readScalar(rhoId).toHostDouble();
      const auto it =
          static_cast<std::size_t>(e.readScalar(iterId).toHostDouble());
      const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
      const bool converged = tolerance > 0.0 && rel <= tolerance;
      const bool broken =
          !converged && std::abs(rho) <= opts.breakdownTolerance *
                                             std::max(bb, 1e-300);
      const bool bad = !std::isfinite(rr) || rel > opts.divergenceFactor;
      // ABFT verdict: sticky checksum flag plus the duplicated reduction.
      bool abftBad = false;
      if (!bad && !broken && abftId != graph::kInvalidTensor) {
        const double flag = e.readScalar(abftId).toHostDouble();
        const double dup = e.readScalar(dupId).toHostDouble();
        abftBad = !(flag <= opts.abftTolerance) || dup != rr;
      }
      if (!bad && !broken && !abftBad) {
        histPtr->push_back({histPtr->size() + 1, rel});
        resPtr->iterations = it;
        resPtr->finalResidual = rel;
        support::recordIteration(e.traceSink(), "bicgstab", histPtr->size(),
                                 rel, e.simCycles(),
                                 e.profile().computeSupersteps);
        return;
      }
      if (abftBad) {
        e.profile().metrics.addCounter("resilience.abft.mismatches", 1);
        e.profile().faultEvents.push_back(
            {"abft-mismatch", e.profile().computeSupersteps, "bicgstab", it,
             -1, 0.0, "checksum defect above tolerance"});
        e.writeScalar(abftId, graph::Scalar(0.0f));  // re-arm the flag
      }
      if (recovery && resPtr->restarts < opts.maxRestarts) {
        ++resPtr->restarts;
        e.profile().metrics.addCounter("bicgstab.restarts", 1);
        e.writeScalar(restartId, graph::Scalar(std::int32_t(1)));
        // Repair the condition scalar so the While loop survives the NaN
        // (NaN comparisons are false and would end the loop prematurely).
        e.writeScalar(resId, graph::Scalar(static_cast<float>(bb)));
        e.profile().faultEvents.push_back(
            {"recovery:restart", e.profile().computeSupersteps, "bicgstab",
             it, -1, 0.0,
             broken ? "rho breakdown; re-seeding from checkpoint"
             : abftBad ? "abft mismatch; re-seeding from checkpoint"
                       : (!std::isfinite(rr)
                              ? "nan residual; re-seeding from checkpoint"
                              : "diverged; re-seeding from checkpoint")});
      } else {
        resPtr->status = broken      ? SolveStatus::Breakdown
                         : abftBad   ? SolveStatus::CorruptionDetected
                         : std::isfinite(rr) ? SolveStatus::Diverged
                                             : SolveStatus::NanDetected;
        resPtr->iterations = it;
        e.writeScalar(okId, graph::Scalar(std::int32_t(0)));
      }
    });
    if (monitorEvery_ > 0) emitTrueResidualMonitor(a, x, b);
  });

  // Post-loop verification (ABFT only): re-measure the true residual so a
  // silently corrupted "converged" x cannot slip through.
  graph::TensorId verId = graph::kInvalidTensor;
  std::optional<Tensor> verNormSq;
  if (robust_.abft && tolerance_ > 0.0) {
    a.spmv(tA, x);
    Tensor vr = a.makeVector(DType::Float32, "bicg_verify");
    vr = Expression(b) - Expression(tA);
    verNormSq.emplace(Dot(vr, vr));
    verId = verNormSq->id();
  }

  dsl::HostCall([resPtr, resId, bId, iterId, verId,
                 tolerance](graph::Engine& e) {
    if (resPtr->status != SolveStatus::Running) return;
    const double rr = e.readScalar(resId).toHostDouble();
    const double bb = e.readScalar(bId).toHostDouble();
    const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
    resPtr->iterations =
        static_cast<std::size_t>(e.readScalar(iterId).toHostDouble());
    if (std::isfinite(rel)) resPtr->finalResidual = rel;
    resPtr->status = tolerance > 0.0 && rel <= tolerance
                         ? SolveStatus::Converged
                         : SolveStatus::MaxIterations;
    if (resPtr->status == SolveStatus::Converged &&
        verId != graph::kInvalidTensor) {
      const double vv = e.readScalar(verId).toHostDouble();
      const double vrel = std::sqrt(std::abs(vv) / std::max(bb, 1e-300));
      if (!(vrel <= 50.0 * tolerance)) {
        resPtr->status = SolveStatus::CorruptionDetected;
        resPtr->finalResidual = vrel;
      }
    }
  });
}

void BiCgStabSolver::emitTrueResidualMonitor(DistMatrix& a, Tensor& x,
                                             Tensor& b) {
  // Lazily created measurement state (double-word).
  if (!monX_) {
    monX_ = a.makeVector(DType::DoubleWord, "bicg_mon_x");
    monB_ = a.makeVector(DType::DoubleWord, "bicg_mon_b");
    monR_ = a.makeVector(DType::DoubleWord, "bicg_mon_r");
    monNormSq_ = Tensor::scalar(DType::DoubleWord, "bicg_mon_nn");
    monBNormSq_ = Tensor::scalar(DType::DoubleWord, "bicg_mon_bb");
    monIter_ = Tensor::scalar(DType::Int32, "bicg_mon_i");
  }
  Tensor& monX = *monX_;
  Tensor& monB = *monB_;
  Tensor& monR = *monR_;
  Tensor& monNormSq = *monNormSq_;
  Tensor& monBNormSq = *monBNormSq_;
  Tensor& monIter = *monIter_;
  monIter = Expression(monIter) + 1;
  dsl::If(Expression(monIter) % static_cast<int>(monitorEvery_) == 0, [&] {
    monX = Expression(x).cast(DType::DoubleWord);
    monB = Expression(b).cast(DType::DoubleWord);
    a.residualExt(monR, monB, monX);
    monNormSq = Dot(Expression(monR), Expression(monR));
    monBNormSq = Dot(Expression(monB), Expression(monB));
    auto trueHist = trueHistory_;
    auto innerHist = history_;
    graph::TensorId nnId = monNormSq.id(), bbId = monBNormSq.id();
    dsl::HostCall([trueHist, innerHist, nnId, bbId](graph::Engine& e) {
      double rr = e.readScalar(nnId).toHostDouble();
      double bb = e.readScalar(bbId).toHostDouble();
      trueHist->push_back({innerHist->size(),
                           std::sqrt(std::abs(rr) / std::max(bb, 1e-300))});
    });
  });
}

}  // namespace graphene::solver
