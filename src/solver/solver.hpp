// Solver interface (paper §V).
//
// "A key feature is the modular design, which allows for nested solver
// configurations — any solver can serve as a preconditioner for another."
// A Solver emits, via symbolic execution, the program computing
// z ≈ A⁻¹ r from a zero initial guess. Used at the top level it is the
// solve; used inside another solver it is the preconditioner application.
//
// The hierarchy is configured through JSON (§V): see makeSolver().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "solver/dist_matrix.hpp"
#include "support/json.hpp"

namespace graphene::solver {

/// One host-recorded convergence sample.
struct IterationRecord {
  std::size_t iteration = 0;  // cumulative inner-iteration count
  double residual = 0.0;      // relative residual ‖r‖/‖b‖
};

/// Structured outcome of an iterative solve. Iteration no longer fails
/// silently: numerical breakdown, divergence, and NaN/Inf residuals are
/// first-class, testable outcomes (the design production frameworks such as
/// Ginkgo use for their stopping/breakdown logic).
enum class SolveStatus {
  NotRun,         // apply() emitted, program not executed yet
  Running,        // execution started, no verdict yet
  Converged,      // relative residual reached the tolerance
  MaxIterations,  // iteration budget exhausted (also the tolerance==0 mode)
  Breakdown,      // recurrence collapsed (e.g. BiCGStab rho → 0)
  Diverged,       // residual grew past the divergence threshold
  NanDetected,    // NaN/Inf residual survived every restart attempt
  CorruptionDetected,  // ABFT checksum mismatch survived every recovery try
  // Service-envelope verdicts (SolverService, solver/service.hpp). A solve
  // that never ran or was stopped by the robustness envelope still ends in
  // a first-class, testable outcome — the converge-or-fail-typed invariant
  // extends to serving.
  DeadlineExceeded,    // job ran past its deadline (stopped at a superstep)
  Cancelled,           // cooperative cancellation honoured mid-solve
  AdmissionRejected,   // admission control refused the job (queue/SRAM)
  CircuitOpen,         // matrix fingerprint quarantined after repeat failures
};

inline const char* toString(SolveStatus status) {
  switch (status) {
    case SolveStatus::NotRun: return "not-run";
    case SolveStatus::Running: return "running";
    case SolveStatus::Converged: return "converged";
    case SolveStatus::MaxIterations: return "max-iterations";
    case SolveStatus::Breakdown: return "breakdown";
    case SolveStatus::Diverged: return "diverged";
    case SolveStatus::NanDetected: return "nan-detected";
    case SolveStatus::CorruptionDetected: return "corruption-detected";
    case SolveStatus::DeadlineExceeded: return "deadline-exceeded";
    case SolveStatus::Cancelled: return "cancelled";
    case SolveStatus::AdmissionRejected: return "admission-rejected";
    case SolveStatus::CircuitOpen: return "circuit-open";
  }
  return "unknown";
}

/// Filled in by host callbacks while the emitted program executes; read it
/// after engine.run().
struct SolveResult {
  SolveStatus status = SolveStatus::NotRun;
  std::size_t iterations = 0;   // iterations (CG/BiCGStab) or refinements
  double finalResidual = -1.0;  // last recorded relative residual
  std::size_t restarts = 0;     // automatic restarts taken (CG/BiCGStab)
  std::size_t rollbacks = 0;    // checkpoint rollbacks taken (MPIR)
};

/// Fault-tolerance knobs of the iterative solvers, configured through the
/// JSON "robustness" object. The defaults keep recovery on; setting
/// maxRestarts/maxRollbacks to 0 removes the recovery program steps
/// entirely (the guards that detect and report bad states remain).
struct RobustnessOptions {
  /// CG/BiCGStab: automatic restarts (re-seed from the last checkpointed
  /// iterate) before giving up on a NaN/diverged/broken-down state.
  std::size_t maxRestarts = 2;
  /// Relative residual above which the iteration counts as diverged.
  double divergenceFactor = 1e8;
  /// BiCGStab: |rho| <= breakdownTolerance * ‖b‖² flags a breakdown.
  double breakdownTolerance = 1e-30;
  /// CG/BiCGStab: checkpoint the iterate every N iterations (0 disables,
  /// which also disables restarts — nothing valid to restart from).
  std::size_t checkpointEvery = 8;
  /// MPIR: rollback retry budget. Each consecutive rollback costs double
  /// the previous one (backoff), so a persistently corrupted refinement
  /// loop exhausts the budget quickly instead of thrashing.
  std::size_t maxRollbacks = 3;
  /// MPIR: a residual that grows by more than this factor (in norm) over
  /// the last good refinement step is treated as corrupted.
  double residualGrowthFactor = 100.0;
  /// ABFT checksum verification of the SpMV and dot-reduction kernels.
  /// Off by default: enabling it appends checksum compute sets to every
  /// SpMV emission, so the disabled path carries zero cost.
  bool abft = false;
  /// Relative checksum defect above which an ABFT check counts as a
  /// mismatch (rounding headroom for the float32 kernels).
  double abftTolerance = 1e-3;
};

/// Parses the optional "robustness" object of a solver config.
RobustnessOptions parseRobustness(const json::Value& config);

class Solver {
 public:
  virtual ~Solver() = default;

  virtual std::string name() const = 0;

  /// Emits one-time preparation (e.g. the (D)ILU factorisation). Idempotent:
  /// composite solvers call this before building loop bodies so setup steps
  /// are scheduled exactly once, outside any loop.
  void ensureSetup(DistMatrix& a) {
    if (!setupDone_) {
      setupDone_ = true;
      setup(a);
    }
  }

  /// Emits the program computing z ≈ A⁻¹ r with zero initial guess.
  /// z and r are float32 vectors with the matrix's owned mapping.
  virtual void apply(DistMatrix& a, Tensor& z, Tensor& r) = 0;

  /// Residual history recorded by host callbacks during execution
  /// (top-level/iterative solvers only; empty for preconditioners).
  /// Guaranteed free of NaN/Inf garbage: non-finite samples are surfaced
  /// through result().status instead of being recorded.
  const std::vector<IterationRecord>& history() const { return *history_; }
  void clearHistory() { history_->clear(); }

  /// Structured outcome of the last execution (iterative solvers; stays
  /// NotRun for pure preconditioners).
  const SolveResult& result() const { return *result_; }

  /// Id of the device tensor holding this solver's best-known iterate while
  /// the emitted program runs — the checkpoint when checkpointing is on,
  /// else the live iterate. The remap layer migrates solver state through
  /// it after a hard fault. kInvalidTensor for solvers with no such state
  /// (preconditioners); valid only after apply() has been emitted.
  virtual graph::TensorId stateTensor() const { return graph::kInvalidTensor; }

  /// The nested solver this one delegates to, or nullptr for leaf solvers.
  /// CG/BiCGStab return their preconditioner, MPIR its inner solver (IR is
  /// preconditioned Richardson, so the inner solve *is* the preconditioner
  /// application). Lets nested configurations be introspected uniformly —
  /// e.g. the trace exporter naming solver rows, or tooling walking a chain
  /// like mpir → bicgstab → ilu.
  virtual Solver* preconditioner() { return nullptr; }

  /// "cg+jacobi", "mpir+bicgstab+ilu": the solver chain, outermost first.
  std::string chainName() {
    std::string s = name();
    for (Solver* p = preconditioner(); p != nullptr;
         p = p->preconditioner()) {
      s += "+" + p->name();
    }
    return s;
  }

 protected:
  virtual void setup(DistMatrix& a) { (void)a; }

  std::shared_ptr<std::vector<IterationRecord>> history_ =
      std::make_shared<std::vector<IterationRecord>>();
  std::shared_ptr<SolveResult> result_ = std::make_shared<SolveResult>();

 private:
  bool setupDone_ = false;
};

/// Builds a (possibly nested) solver from a JSON configuration, e.g.:
///   {
///     "type": "mpir",
///     "extendedType": "doubleword",
///     "maxRefinements": 20, "tolerance": 1e-13,
///     "inner": {
///       "type": "bicgstab", "maxIterations": 100, "tolerance": 0,
///       "preconditioner": {"type": "ilu"}
///     }
///   }
/// Types: bicgstab, gauss-seidel, jacobi, ilu, dilu, mpir, identity.
std::unique_ptr<Solver> makeSolver(const json::Value& config);

/// Convenience: parses the JSON text, then builds the solver.
std::unique_ptr<Solver> makeSolverFromString(const std::string& jsonText);

}  // namespace graphene::solver
