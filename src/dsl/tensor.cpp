#include "dsl/tensor.hpp"

#include <iostream>

#include "dsl/interpreter.hpp"
#include "graph/engine.hpp"
#include "support/error.hpp"

namespace graphene::dsl {

namespace detail {

struct ExpNode {
  enum class Kind { Ref, Const, Binary, Unary, Cast, Select };
  Kind kind = Kind::Const;
  DType type = DType::Float32;
  graph::TensorId tensor = graph::kInvalidTensor;  // Ref
  Scalar constant;                                 // Const
  ExpNodePtr a, b, c;
  BinOp bop = BinOp::Add;
  UnOp uop = UnOp::Neg;
};

namespace {

ExpNodePtr refNode(graph::TensorId id) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Ref;
  n->tensor = id;
  n->type = Context::current().graph().tensor(id).dtype;
  return n;
}

ExpNodePtr constNode(Scalar s) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Const;
  n->constant = s;
  n->type = s.type();
  return n;
}

ExpNodePtr binaryNode(BinOp op, ExpNodePtr a, ExpNodePtr b) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Binary;
  bool isCmp = op == BinOp::Lt || op == BinOp::Le || op == BinOp::Gt ||
               op == BinOp::Ge || op == BinOp::Eq || op == BinOp::Ne ||
               op == BinOp::And || op == BinOp::Or;
  n->type = isCmp ? DType::Bool : graph::promote(a->type, b->type);
  n->bop = op;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

ExpNodePtr unaryNode(UnOp op, ExpNodePtr a) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Unary;
  n->type = op == UnOp::Not ? DType::Bool : a->type;
  n->uop = op;
  n->a = std::move(a);
  return n;
}

/// Collects the distinct tensors referenced by an expression (depth-first,
/// stable order).
void collectRefs(const ExpNodePtr& node, std::vector<graph::TensorId>& out) {
  if (!node) return;
  if (node->kind == ExpNode::Kind::Ref) {
    for (graph::TensorId id : out) {
      if (id == node->tensor) return;
    }
    out.push_back(node->tensor);
    return;
  }
  collectRefs(node->a, out);
  collectRefs(node->b, out);
  collectRefs(node->c, out);
}

bool tensorIsScalarShaped(const graph::TensorInfo& info) {
  for (std::size_t s : info.mapping.sizePerTile) {
    if (s != 1) return false;
  }
  return true;
}

}  // namespace
}  // namespace detail

using detail::ExpNode;
using detail::ExpNodePtr;

// ---------------------------------------------------------------------------
// Tensor
// ---------------------------------------------------------------------------

namespace {

graph::TensorId makeTensor(DType type, graph::TileMapping mapping,
                           std::string name, bool replicated) {
  Context& ctx = Context::current();
  graph::TensorInfo info;
  info.name = name.empty() ? ctx.freshName("t") : std::move(name);
  info.dtype = type;
  info.mapping = std::move(mapping);
  info.replicated = replicated;
  return ctx.graph().addTensor(std::move(info));
}

}  // namespace

Tensor::Tensor(DType type, std::size_t size, std::string name) {
  id_ = makeTensor(
      type,
      graph::TileMapping::linear(size, Context::current().target().totalTiles()),
      std::move(name), false);
}

Tensor::Tensor(DType type, graph::TileMapping mapping, std::string name) {
  id_ = makeTensor(type, std::move(mapping), std::move(name), false);
}

Tensor Tensor::scalar(DType type, std::string name) {
  Tensor t;
  t.id_ = makeTensor(
      type,
      graph::TileMapping::replicated(Context::current().target().totalTiles()),
      std::move(name), true);
  return t;
}

Tensor::Tensor(const Expression& e) { id_ = e.materialize().id(); }

Tensor::Tensor(const Tensor& other) {
  const auto& info = other.info();
  id_ = makeTensor(info.dtype, info.mapping, "", info.replicated);
  Expression(other).materializeInto(*this);
}

Tensor& Tensor::operator=(const Expression& e) {
  e.materializeInto(*this);
  return *this;
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other || id_ == other.id_) return *this;
  Expression(other).materializeInto(*this);
  return *this;
}

Expression Tensor::reduce(ReduceKind kind) const {
  return Expression(*this).reduce(kind);
}

Expression Tensor::cast(DType type) const {
  return Expression(*this).cast(type);
}

std::size_t Tensor::size() const { return info().totalElements(); }

DType Tensor::type() const { return info().dtype; }

const graph::TensorInfo& Tensor::info() const {
  return Context::current().graph().tensor(id_);
}

bool Tensor::isScalarShaped() const {
  return detail::tensorIsScalarShaped(info());
}

Tensor Tensor::wrap(graph::TensorId id) {
  Tensor t;
  t.id_ = id;
  return t;
}

// ---------------------------------------------------------------------------
// Expression construction
// ---------------------------------------------------------------------------

Expression::Expression(const Tensor& t) { node_ = detail::refNode(t.id()); }
Expression::Expression(float v) { node_ = detail::constNode(Scalar(v)); }
Expression::Expression(double v)
    : Expression(static_cast<float>(v)) {}
Expression::Expression(int v) {
  node_ = detail::constNode(Scalar(std::int32_t(v)));
}

Expression Expression::constant(Scalar s) {
  return fromNode(detail::constNode(s));
}

Expression Expression::fromNode(detail::ExpNodePtr node) {
  Expression e;
  e.node_ = std::move(node);
  return e;
}

Expression Expression::cast(DType type) const {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Cast;
  n->type = type;
  n->a = node_;
  return fromNode(n);
}

DType Expression::type() const { return node_->type; }

#define GRAPHENE_DEFINE_EXPR_BINOP(sym, op)                                  \
  Expression operator sym(const Expression& a, const Expression& b) {        \
    return Expression::fromNode(                                             \
        detail::binaryNode(BinOp::op, a.node(), b.node()));                  \
  }

GRAPHENE_DEFINE_EXPR_BINOP(+, Add)
GRAPHENE_DEFINE_EXPR_BINOP(-, Sub)
GRAPHENE_DEFINE_EXPR_BINOP(*, Mul)
GRAPHENE_DEFINE_EXPR_BINOP(/, Div)
GRAPHENE_DEFINE_EXPR_BINOP(<, Lt)
GRAPHENE_DEFINE_EXPR_BINOP(<=, Le)
GRAPHENE_DEFINE_EXPR_BINOP(>, Gt)
GRAPHENE_DEFINE_EXPR_BINOP(>=, Ge)
GRAPHENE_DEFINE_EXPR_BINOP(==, Eq)
GRAPHENE_DEFINE_EXPR_BINOP(!=, Ne)
GRAPHENE_DEFINE_EXPR_BINOP(&&, And)
GRAPHENE_DEFINE_EXPR_BINOP(||, Or)
GRAPHENE_DEFINE_EXPR_BINOP(%, Mod)
#undef GRAPHENE_DEFINE_EXPR_BINOP

Expression operator-(const Expression& a) {
  return Expression::fromNode(detail::unaryNode(UnOp::Neg, a.node()));
}
Expression operator!(const Expression& a) {
  return Expression::fromNode(detail::unaryNode(UnOp::Not, a.node()));
}
Expression Abs(const Expression& a) {
  return Expression::fromNode(detail::unaryNode(UnOp::Abs, a.node()));
}
Expression Sqrt(const Expression& a) {
  return Expression::fromNode(detail::unaryNode(UnOp::Sqrt, a.node()));
}
Expression Min(const Expression& a, const Expression& b) {
  return Expression::fromNode(detail::binaryNode(BinOp::Min, a.node(), b.node()));
}
Expression Max(const Expression& a, const Expression& b) {
  return Expression::fromNode(detail::binaryNode(BinOp::Max, a.node(), b.node()));
}
Expression Select(const Expression& cond, const Expression& ifTrue,
                  const Expression& ifFalse) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Select;
  n->type = graph::promote(ifTrue.type(), ifFalse.type());
  n->a = cond.node();
  n->b = ifTrue.node();
  n->c = ifFalse.node();
  return Expression::fromNode(n);
}

Expression Dot(const Expression& a, const Expression& b) {
  return (a * b).reduce();
}

Expression Norm2(const Expression& a) { return Sqrt((a * a).reduce()); }

Expression NormInf(const Expression& a) {
  return Abs(a).reduce(ReduceKind::Max);
}

// ---------------------------------------------------------------------------
// Materialisation
// ---------------------------------------------------------------------------

namespace {

bool exprIsScalarShaped(const ExpNodePtr& node) {
  std::vector<graph::TensorId> refs;
  detail::collectRefs(node, refs);
  graph::Graph& g = Context::current().graph();
  for (graph::TensorId id : refs) {
    if (!detail::tensorIsScalarShaped(g.tensor(id))) return false;
  }
  return true;
}

}  // namespace

void Expression::materializeInto(Tensor& dst,
                                 const std::string& category) const {
  Context& ctx = Context::current();
  graph::Graph& g = ctx.graph();
  const graph::TensorInfo& dstInfo = g.tensor(dst.id());

  std::vector<graph::TensorId> refs;
  detail::collectRefs(node_, refs);

  // Broadcast check: every referenced tensor matches dst's mapping exactly
  // or is scalar-shaped (one element per tile — NumPy rule for size 1).
  std::vector<bool> scalarArg(refs.size(), false);
  for (std::size_t k = 0; k < refs.size(); ++k) {
    const graph::TensorInfo& info = g.tensor(refs[k]);
    if (refs[k] == dst.id()) {
      scalarArg[k] = detail::tensorIsScalarShaped(info);
      continue;  // in-place update, same mapping by construction
    }
    if (detail::tensorIsScalarShaped(info)) {
      scalarArg[k] = true;
    } else {
      GRAPHENE_CHECK(info.mapping == dstInfo.mapping,
                     "elementwise operands must share the destination's tile "
                     "mapping or be scalars ('",
                     info.name, "' vs '", dstInfo.name, "')");
    }
  }

  // Trace the fused elementwise codelet (§III-C: the whole expression tree
  // becomes one codelet).
  CodeletBuilder builder;
  builder.setNumArgs(1 + refs.size());
  std::vector<Value> handles;
  handles.push_back(Value::argument(0, dstInfo.dtype));
  for (std::size_t k = 0; k < refs.size(); ++k) {
    handles.push_back(
        Value::argument(static_cast<int>(k + 1), g.tensor(refs[k]).dtype));
  }

  // Hoist scalar operands out of the loop.
  std::vector<Value> hoisted;
  hoisted.reserve(refs.size());
  for (std::size_t k = 0; k < refs.size(); ++k) {
    if (scalarArg[k]) {
      hoisted.push_back(Value(handles[k + 1][Value(0)]));
    } else {
      hoisted.push_back(Value(0));  // unused slot
    }
  }

  std::function<Value(const ExpNodePtr&, const Value&)> lower =
      [&](const ExpNodePtr& n, const Value& i) -> Value {
    switch (n->kind) {
      case ExpNode::Kind::Ref: {
        std::size_t k = 0;
        while (k < refs.size() && refs[k] != n->tensor) ++k;
        return scalarArg[k] ? hoisted[k] : Value(handles[k + 1][i]);
      }
      case ExpNode::Kind::Const:
        return Value(n->constant);
      case ExpNode::Kind::Binary: {
        Value a = lower(n->a, i);
        Value b = lower(n->b, i);
        switch (n->bop) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div: return a / b;
          case BinOp::Mod: return a % b;
          case BinOp::Lt: return a < b;
          case BinOp::Le: return a <= b;
          case BinOp::Gt: return a > b;
          case BinOp::Ge: return a >= b;
          case BinOp::Eq: return a == b;
          case BinOp::Ne: return a != b;
          case BinOp::And: return a && b;
          case BinOp::Or: return a || b;
          case BinOp::Min: return Min(a, b);
          case BinOp::Max: return Max(a, b);
        }
        GRAPHENE_UNREACHABLE("bad binop");
      }
      case ExpNode::Kind::Unary: {
        Value a = lower(n->a, i);
        switch (n->uop) {
          case UnOp::Neg: return -a;
          case UnOp::Abs: return Abs(a);
          case UnOp::Sqrt: return Sqrt(a);
          case UnOp::Not: return !a;
        }
        GRAPHENE_UNREACHABLE("bad unop");
      }
      case ExpNode::Kind::Cast:
        return lower(n->a, i).cast(n->type);
      case ExpNode::Kind::Select:
        return Select(lower(n->a, i), lower(n->b, i), lower(n->c, i));
    }
    GRAPHENE_UNREACHABLE("bad node kind");
  };

  {
    Value dstHandle = handles[0];
    For(0, dstHandle.size(), 1, [&](Value i) {
      dstHandle[i] = lower(node_, i);
    });
  }
  CodeletIR ir = builder.finish();

  // Register codelet + one vertex per tile with data.
  const ipu::CostModel cost = g.costModel();
  const std::size_t workers = g.target().workersPerTile;
  graph::CodeletId codeletId = g.addCodelet(
      makeCodelet(ctx.freshName("ew"), std::move(ir), cost, workers));

  graph::ComputeSetId cs = g.addComputeSet(category);
  for (std::size_t tile = 0; tile < g.target().totalTiles(); ++tile) {
    if (dstInfo.mapping.sizePerTile[tile] == 0) continue;
    graph::Vertex v;
    v.codelet = codeletId;
    v.tile = tile;
    v.args.push_back(graph::TensorSlice{
        dst.id(), tile, 0, dstInfo.mapping.sizePerTile[tile]});
    for (graph::TensorId rid : refs) {
      const auto& rinfo = g.tensor(rid);
      v.args.push_back(graph::TensorSlice{
          rid, tile, 0, rinfo.mapping.sizePerTile[tile]});
    }
    g.addVertex(cs, std::move(v));
  }
  ctx.emit(graph::Program::execute(cs));
}

Tensor Expression::materialize(const std::string& category) const {
  Context& ctx = Context::current();
  graph::Graph& g = ctx.graph();
  std::vector<graph::TensorId> refs;
  detail::collectRefs(node_, refs);

  // Result shape: the common non-scalar mapping, else a replicated scalar.
  const graph::TileMapping* mapping = nullptr;
  for (graph::TensorId id : refs) {
    const auto& info = g.tensor(id);
    if (!detail::tensorIsScalarShaped(info)) {
      mapping = &info.mapping;
      break;
    }
  }
  Tensor dst = mapping ? Tensor(node_->type, *mapping)
                       : Tensor::scalar(node_->type);
  materializeInto(dst, category);
  return dst;
}

bool Expression::isScalarShaped() const { return exprIsScalarShaped(node_); }

Expression Expression::reduce(ReduceKind kind) const {
  Context& ctx = Context::current();
  graph::Graph& g = ctx.graph();

  // The accumulator combine step for this reduction kind.
  auto combine = [kind](const Value& acc, const Value& v) -> Value {
    switch (kind) {
      case ReduceKind::Sum: return acc + v;
      case ReduceKind::Max: return Max(acc, v);
      case ReduceKind::Min: return Min(acc, v);
      case ReduceKind::AbsMax: return Max(acc, Abs(v));
    }
    GRAPHENE_UNREACHABLE("bad reduce kind");
  };

  // Reducing a scalar-shaped expression is the expression itself (AbsMax
  // still applies its elementwise transform).
  if (exprIsScalarShaped(node_)) {
    Tensor out = kind == ReduceKind::AbsMax
                     ? Abs(*this).materialize("reduce")
                     : materialize("reduce");
    return Expression(out);
  }

  std::vector<graph::TensorId> refs;
  detail::collectRefs(node_, refs);
  const std::size_t nTiles = g.target().totalTiles();
  const DType accType = node_->type;

  std::vector<bool> scalarArg(refs.size());
  for (std::size_t k = 0; k < refs.size(); ++k) {
    scalarArg[k] = detail::tensorIsScalarShaped(g.tensor(refs[k]));
  }
  // All non-scalar refs must share one mapping; find it for loop bounds.
  int loopArg = -1;
  const graph::TileMapping* mapping = nullptr;
  for (std::size_t k = 0; k < refs.size(); ++k) {
    if (!scalarArg[k]) {
      const auto& info = g.tensor(refs[k]);
      if (mapping == nullptr) {
        mapping = &info.mapping;
        loopArg = static_cast<int>(k);
      } else {
        GRAPHENE_CHECK(info.mapping == *mapping,
                       "reduce operands must share one tile mapping");
      }
    }
  }
  GRAPHENE_CHECK(loopArg >= 0, "reduce needs a non-scalar operand");

  // Step 1: fused per-tile partial reduction.
  Tensor partial(accType, graph::TileMapping::replicated(nTiles),
                 ctx.freshName("partial"));
  {
    CodeletBuilder builder;
    builder.setNumArgs(1 + refs.size());
    std::vector<Value> handles;
    handles.push_back(Value::argument(0, accType));
    for (std::size_t k = 0; k < refs.size(); ++k) {
      handles.push_back(
          Value::argument(static_cast<int>(k + 1), g.tensor(refs[k]).dtype));
    }
    std::vector<Value> hoisted;
    for (std::size_t k = 0; k < refs.size(); ++k) {
      hoisted.push_back(scalarArg[k] ? Value(handles[k + 1][Value(0)])
                                     : Value(0));
    }
    std::function<Value(const ExpNodePtr&, const Value&)> lower =
        [&](const ExpNodePtr& n, const Value& i) -> Value {
      switch (n->kind) {
        case ExpNode::Kind::Ref: {
          std::size_t k = 0;
          while (k < refs.size() && refs[k] != n->tensor) ++k;
          return scalarArg[k] ? hoisted[k] : Value(handles[k + 1][i]);
        }
        case ExpNode::Kind::Const: return Value(n->constant);
        case ExpNode::Kind::Binary: {
          Value a = lower(n->a, i), b = lower(n->b, i);
          switch (n->bop) {
            case BinOp::Add: return a + b;
            case BinOp::Sub: return a - b;
            case BinOp::Mul: return a * b;
            case BinOp::Div: return a / b;
            case BinOp::Mod: return a % b;
            case BinOp::Lt: return a < b;
            case BinOp::Le: return a <= b;
            case BinOp::Gt: return a > b;
            case BinOp::Ge: return a >= b;
            case BinOp::Eq: return a == b;
            case BinOp::Ne: return a != b;
            case BinOp::And: return a && b;
            case BinOp::Or: return a || b;
            case BinOp::Min: return Min(a, b);
            case BinOp::Max: return Max(a, b);
          }
          GRAPHENE_UNREACHABLE("bad binop");
        }
        case ExpNode::Kind::Unary: {
          Value a = lower(n->a, i);
          switch (n->uop) {
            case UnOp::Neg: return -a;
            case UnOp::Abs: return Abs(a);
            case UnOp::Sqrt: return Sqrt(a);
            case UnOp::Not: return !a;
          }
          GRAPHENE_UNREACHABLE("bad unop");
        }
        case ExpNode::Kind::Cast: return lower(n->a, i).cast(n->type);
        case ExpNode::Kind::Select:
          return Select(lower(n->a, i), lower(n->b, i), lower(n->c, i));
      }
      GRAPHENE_UNREACHABLE("bad node kind");
    };

    // Initialise from element 0 (identity-free: works for Max/Min too; an
    // empty tile region keeps the zero initialiser).
    Value acc(Scalar::zero(accType));
    Value loopHandle = handles[static_cast<std::size_t>(loopArg) + 1];
    If(loopHandle.size() > 0, [&] {
      Value first = lower(node_, Value(0));
      acc = kind == ReduceKind::AbsMax ? Abs(first) : first;
    });
    For(1, loopHandle.size(), 1,
        [&](Value i) { acc = combine(acc, lower(node_, i)); });
    Value out = handles[0];
    out[Value(0)] = acc;

    CodeletIR ir = builder.finish();
    const ipu::CostModel cost = g.costModel();
    const std::size_t workers = g.target().workersPerTile;
    graph::CodeletId codeletId = g.addCodelet(makeCodelet(
        ctx.freshName("reduce_partial"), std::move(ir), cost, workers));
    graph::ComputeSetId cs = g.addComputeSet("reduce");
    for (std::size_t tile = 0; tile < nTiles; ++tile) {
      graph::Vertex v;
      v.codelet = codeletId;
      v.tile = tile;
      v.args.push_back(graph::TensorSlice{partial.id(), tile, 0, 1});
      for (graph::TensorId rid : refs) {
        const auto& rinfo = g.tensor(rid);
        v.args.push_back(graph::TensorSlice{
            rid, tile, 0, rinfo.mapping.sizePerTile[tile]});
      }
      g.addVertex(cs, std::move(v));
    }
    ctx.emit(graph::Program::execute(cs));
  }

  // Step 2: gather partials on the control tile (tile 0 unless a resilience
  // layer moved control off a blacklisted tile).
  const std::size_t ctrl = g.controlTile();
  Tensor gathered(accType, graph::TileMapping::onTile(nTiles, ctrl, nTiles),
                  ctx.freshName("gather"));
  {
    std::vector<graph::CopySegment> segs;
    segs.reserve(nTiles);
    for (std::size_t tile = 0; tile < nTiles; ++tile) {
      graph::CopySegment s;
      s.src = partial.id();
      s.srcTile = tile;
      s.srcBegin = 0;
      s.dst = gathered.id();
      s.dsts.push_back({ctrl, tile});
      s.count = 1;
      segs.push_back(std::move(s));
    }
    ctx.emit(graph::Program::copy(std::move(segs)));
  }

  // Step 3: final reduction on the control tile into a replicated scalar.
  Tensor out = Tensor::scalar(accType, ctx.freshName("reduced"));
  {
    CodeletBuilder builder;
    builder.setNumArgs(2);
    Value gHandle = Value::argument(0, accType);
    Value oHandle = Value::argument(1, accType);
    Value acc(gHandle[Value(0)]);
    For(1, gHandle.size(), 1,
        [&](Value i) { acc = combine(acc, Value(gHandle[i])); });
    oHandle[Value(0)] = acc;
    CodeletIR ir = builder.finish();
    const ipu::CostModel cost = g.costModel();
    const std::size_t workers = g.target().workersPerTile;
    graph::CodeletId codeletId = g.addCodelet(makeCodelet(
        ctx.freshName("reduce_final"), std::move(ir), cost, workers));
    graph::ComputeSetId cs = g.addComputeSet("reduce");
    graph::Vertex v;
    v.codelet = codeletId;
    v.tile = ctrl;
    v.args.push_back(graph::TensorSlice{gathered.id(), ctrl, 0, nTiles});
    v.args.push_back(graph::TensorSlice{out.id(), ctrl, 0, 1});
    g.addVertex(cs, std::move(v));
    ctx.emit(graph::Program::execute(cs));
  }

  // Step 4: broadcast the result to every tile's replica.
  if (nTiles > 1) {
    graph::CopySegment s;
    s.src = out.id();
    s.srcTile = ctrl;
    s.srcBegin = 0;
    s.dst = out.id();
    s.count = 1;
    for (std::size_t tile = 0; tile < nTiles; ++tile) {
      if (tile != ctrl) s.dsts.push_back({tile, 0});
    }
    ctx.emit(graph::Program::copy({std::move(s)}));
  }

  return Expression(out);
}

// ---------------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------------

namespace {

/// Materialises `cond` into a fresh replicated Bool scalar inside a new
/// program sequence; returns (sequence, tensorId).
std::pair<graph::ProgramPtr, graph::TensorId> buildCondition(
    const Expression& cond) {
  Context& ctx = Context::current();
  GRAPHENE_CHECK(cond.isScalarShaped(),
                 "control-flow conditions must be scalar expressions");
  ctx.pushSequence();
  Tensor condT = Tensor::scalar(DType::Bool, ctx.freshName("cond"));
  Expression c = cond;
  c.materializeInto(condT, "condition");
  graph::ProgramPtr prog = ctx.popSequence();
  return {prog, condT.id()};
}

}  // namespace

void If(const Expression& cond, const std::function<void()>& then,
        const std::function<void()>& otherwise) {
  Context& ctx = Context::current();
  auto [condProg, condId] = buildCondition(cond);
  ctx.pushSequence();
  then();
  graph::ProgramPtr thenProg = ctx.popSequence();
  graph::ProgramPtr elseProg;
  if (otherwise) {
    ctx.pushSequence();
    otherwise();
    elseProg = ctx.popSequence();
  }
  ctx.emit(graph::Program::branch(condProg, condId, thenProg, elseProg));
}

void While(const Expression& cond, const std::function<void()>& body) {
  Context& ctx = Context::current();
  auto [condProg, condId] = buildCondition(cond);
  ctx.pushSequence();
  body();
  graph::ProgramPtr bodyProg = ctx.popSequence();
  ctx.emit(graph::Program::repeatWhile(condProg, condId, bodyProg));
}

void Repeat(std::size_t times, const std::function<void()>& body) {
  Context& ctx = Context::current();
  ctx.pushSequence();
  body();
  graph::ProgramPtr bodyProg = ctx.popSequence();
  ctx.emit(graph::Program::repeat(times, bodyProg));
}

void Print(const std::string& label, const Tensor& t) {
  graph::TensorId id = t.id();
  Context::current().emit(
      graph::Program::hostCall([label, id](graph::Engine& engine) {
        const auto& info = engine.graph().tensor(id);
        std::size_t n = std::min<std::size_t>(info.totalElements(),
                                              info.replicated ? 1 : 8);
        std::cout << label << ":";
        for (std::size_t i = 0; i < n; ++i) {
          std::cout << " " << engine.loadElement(id, i).toString();
        }
        if (!info.replicated && info.totalElements() > n) std::cout << " ...";
        std::cout << "\n";
      }));
}

void HostCall(std::function<void(graph::Engine&)> fn) {
  Context::current().emit(graph::Program::hostCall(std::move(fn)));
}

// ---------------------------------------------------------------------------
// Execute — CodeDSL entry point
// ---------------------------------------------------------------------------

graph::ComputeSetId ExecuteOnTiles(
    const std::vector<TensorRef>& tensors,
    const std::function<void(std::vector<Value>&)>& fn,
    const std::string& category, const std::vector<std::size_t>& tiles) {
  Context& ctx = Context::current();
  graph::Graph& g = ctx.graph();

  CodeletBuilder builder;
  builder.setNumArgs(tensors.size());
  std::vector<Value> handles;
  handles.reserve(tensors.size());
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    handles.push_back(Value::argument(static_cast<int>(k),
                                      g.tensor(tensors[k].id()).dtype));
  }
  fn(handles);
  CodeletIR ir = builder.finish();

  const ipu::CostModel cost = g.costModel();
  const std::size_t workers = g.target().workersPerTile;
  graph::CodeletId codeletId = g.addCodelet(
      makeCodelet(ctx.freshName("codelet"), std::move(ir), cost, workers));

  std::vector<std::size_t> vertexTiles = tiles;
  if (vertexTiles.empty()) {
    for (std::size_t tile = 0; tile < g.target().totalTiles(); ++tile) {
      for (const TensorRef& t : tensors) {
        if (g.tensor(t.id()).mapping.sizePerTile[tile] > 0) {
          vertexTiles.push_back(tile);
          break;
        }
      }
    }
  }

  graph::ComputeSetId cs = g.addComputeSet(category);
  for (std::size_t tile : vertexTiles) {
    graph::Vertex v;
    v.codelet = codeletId;
    v.tile = tile;
    for (const TensorRef& t : tensors) {
      const auto& info = g.tensor(t.id());
      v.args.push_back(graph::TensorSlice{
          t.id(), tile, 0, info.mapping.sizePerTile[tile]});
    }
    g.addVertex(cs, std::move(v));
  }
  ctx.emit(graph::Program::execute(cs));
  return cs;
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(std::vector<Value>&)>& fn,
             const std::string& category) {
  ExecuteOnTiles(tensors, fn, category, {});
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value)>& fn,
             const std::string& category) {
  GRAPHENE_CHECK(tensors.size() == 1, "Execute arity mismatch");
  Execute(tensors, [&](std::vector<Value>& args) { fn(args[0]); }, category);
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value)>& fn,
             const std::string& category) {
  GRAPHENE_CHECK(tensors.size() == 2, "Execute arity mismatch");
  Execute(tensors,
          [&](std::vector<Value>& args) { fn(args[0], args[1]); }, category);
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value, Value)>& fn,
             const std::string& category) {
  GRAPHENE_CHECK(tensors.size() == 3, "Execute arity mismatch");
  Execute(tensors,
          [&](std::vector<Value>& args) { fn(args[0], args[1], args[2]); },
          category);
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value, Value, Value)>& fn,
             const std::string& category) {
  GRAPHENE_CHECK(tensors.size() == 4, "Execute arity mismatch");
  Execute(tensors,
          [&](std::vector<Value>& args) {
            fn(args[0], args[1], args[2], args[3]);
          },
          category);
}

}  // namespace graphene::dsl
