// Preconditioned Conjugate Gradient (for the SPD systems of Table II) and
// the Richardson iteration.
//
// CG is hardened against numerical faults: residuals are checked on the host
// every iteration, NaN/Inf or divergence triggers an automatic restart from
// the last checkpointed iterate (bounded by RobustnessOptions::maxRestarts),
// and the structured outcome is reported through Solver::result().
#include <cmath>

#include "solver/solvers.hpp"
#include "support/trace.hpp"

namespace graphene::solver {

using dsl::Dot;
using dsl::Expression;
using dsl::Tensor;

void RichardsonSolver::apply(DistMatrix& a, Tensor& z, Tensor& r) {
  z = Expression(0.0f);
  Tensor res = a.makeVector(DType::Float32, "rich_res");
  // Iteration counter shared by every execution of the emitted loop body —
  // Richardson computes no residual norm (that would change its cycle
  // cost), so its trace samples carry the iteration index only.
  auto count = std::make_shared<std::size_t>(0);
  dsl::Repeat(iterations_, [&] {
    a.spmv(res, z);
    z = Expression(z) +
        Expression(omega_) * (Expression(r) - Expression(res));
    dsl::HostCall([count](graph::Engine& e) {
      ++*count;
      support::recordIteration(e.traceSink(), "richardson", *count, -1.0,
                               e.simCycles(),
                               e.profile().computeSupersteps);
    });
  });
}

void CgSolver::apply(DistMatrix& a, Tensor& x, Tensor& b) {
  precond_->ensureSetup(a);
  if (robust_.abft) a.enableAbft(robust_.abftTolerance);
  // How this solver's dot products reduce on pods (flat vs per-IPU
  // two-level); a Graph-wide knob, set before any reduction is emitted.
  dsl::Context::current().graph().setReduceMode(reduction_);

  x = Expression(0.0f);
  Tensor r = a.makeVector(DType::Float32, "cg_resid");
  r = Expression(b);  // r0 = b - A*0
  Tensor z = a.makeVector(DType::Float32, "cg_z");
  precond_->apply(a, z, r);
  Tensor p = a.makeVector(DType::Float32, "cg_p");
  p = Expression(z);
  Tensor Ap = a.makeVector(DType::Float32, "cg_Ap");

  Tensor bNormSq = Dot(b, b);
  Tensor rz = Tensor(Dot(r, z));
  Tensor rzNew = Tensor::scalar(DType::Float32, "cg_rznew");
  Tensor alpha = Tensor::scalar(DType::Float32, "cg_alpha");
  Tensor beta = Tensor::scalar(DType::Float32, "cg_beta");
  Tensor denom = Tensor::scalar(DType::Float32, "cg_denom");
  Tensor resNormSq = Tensor(Expression(bNormSq));
  Tensor iter = Tensor::scalar(DType::Int32, "cg_iter");
  iter = Expression(0);

  // Self-healing state: host-controlled abort flag, restart request flag,
  // and the checkpointed iterate restarts re-seed from.
  Tensor ok = Tensor::scalar(DType::Int32, "cg_ok");
  ok = Expression(1);
  Tensor restart = Tensor::scalar(DType::Int32, "cg_restart");
  restart = Expression(0);
  const bool recovery = robust_.maxRestarts > 0 && robust_.checkpointEvery > 0;
  std::optional<Tensor> xCkpt;
  if (recovery) {
    xCkpt.emplace(a.makeVector(DType::Float32, "cg_ckpt"));
    *xCkpt = Expression(x);  // x0 = 0 is always a valid restart point
  }
  stateId_ = recovery ? xCkpt->id() : x.id();
  // ABFT dot-reduction check: a second, independently emitted reduction of
  // the same operand. Fault-free they are bit-identical; corruption landing
  // between or inside the reductions makes them disagree.
  std::optional<Tensor> resDup;
  if (robust_.abft) resDup.emplace(Tensor::scalar(DType::Float32, "cg_rrdup"));

  const float tol2 = static_cast<float>(tolerance_ * tolerance_);
  auto histPtr = history_;
  auto resPtr = result_;
  const RobustnessOptions opts = robust_;
  const double tolerance = tolerance_;
  graph::TensorId resId = resNormSq.id(), bId = bNormSq.id();
  graph::TensorId okId = ok.id(), restartId = restart.id(),
                  iterId = iter.id();
  graph::TensorId abftId =
      robust_.abft ? a.abftFlagId() : graph::kInvalidTensor;
  graph::TensorId dupId = robust_.abft ? resDup->id() : graph::kInvalidTensor;

  // Runs at execution time, before the loop: (re)arm the structured result.
  // The history is deliberately NOT cleared here — as an MPIR inner solver
  // this callback runs every refinement, and the history's cumulative
  // iteration count is what the refinement records are keyed on.
  dsl::HostCall([resPtr](graph::Engine&) {
    *resPtr = SolveResult{};
    resPtr->status = SolveStatus::Running;
  });

  Expression keepGoing =
      tolerance_ > 0.0
          ? Expression(iter) < static_cast<int>(maxIterations_) &&
                Expression(resNormSq) > Expression(tol2) * Expression(bNormSq)
          : Expression(iter) < static_cast<int>(maxIterations_);

  dsl::While(keepGoing && Expression(ok) > Expression(0), [&] {
    if (recovery) {
      // A host guard requested a restart: re-seed from the checkpoint. The
      // residual is recomputed from scratch, so a corrupted r/p/z state is
      // fully flushed.
      dsl::If(Expression(restart) > Expression(0), [&] {
        x = Expression(*xCkpt);
        a.spmv(Ap, x);
        r = Expression(b) - Expression(Ap);
        precond_->apply(a, z, r);
        p = Expression(z);
        rz = Dot(r, z);
        resNormSq = Dot(r, r);
        restart = Expression(0);
      });
    }
    a.spmv(Ap, p);
    denom = Dot(p, Ap);
    alpha = dsl::Select(Abs(Expression(denom)) > Expression(0.0f),
                        Expression(rz) / Expression(denom), Expression(0.0f));
    x = Expression(x) + Expression(alpha) * Expression(p);
    r = Expression(r) - Expression(alpha) * Expression(Ap);
    precond_->apply(a, z, r);
    rzNew = Dot(r, z);
    beta = dsl::Select(Abs(Expression(rz)) > Expression(0.0f),
                       Expression(rzNew) / Expression(rz), Expression(0.0f));
    p = Expression(z) + Expression(beta) * Expression(p);
    rz = Expression(rzNew);
    iter = Expression(iter) + 1;
    resNormSq = Dot(r, r);
    if (robust_.abft) *resDup = Dot(r, r);
    if (recovery) {
      dsl::If(Expression(iter) %
                      static_cast<int>(robust_.checkpointEvery) ==
                  Expression(0),
              [&] { *xCkpt = Expression(x); });
    }
    dsl::HostCall([histPtr, resPtr, opts, recovery, resId, bId, okId,
                   restartId, iterId, abftId, dupId](graph::Engine& e) {
      const double rr = e.readScalar(resId).toHostDouble();
      const double bb = e.readScalar(bId).toHostDouble();
      const auto it =
          static_cast<std::size_t>(e.readScalar(iterId).toHostDouble());
      const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
      const bool bad = !std::isfinite(rr) ||
                       rel > opts.divergenceFactor;
      // ABFT verdict: the sticky checksum flag (SpMV defects) and the
      // duplicated dot reduction (which is bit-identical fault-free).
      bool abftBad = false;
      if (!bad && abftId != graph::kInvalidTensor) {
        const double flag = e.readScalar(abftId).toHostDouble();
        const double dup = e.readScalar(dupId).toHostDouble();
        abftBad = !(flag <= opts.abftTolerance) || dup != rr;
      }
      if (!bad && !abftBad) {
        histPtr->push_back({histPtr->size() + 1, rel});
        resPtr->iterations = it;
        resPtr->finalResidual = rel;
        support::recordIteration(e.traceSink(), "cg", histPtr->size(), rel,
                                 e.simCycles(),
                                 e.profile().computeSupersteps);
        return;
      }
      if (abftBad) {
        e.profile().metrics.addCounter("resilience.abft.mismatches", 1);
        e.profile().faultEvents.push_back(
            {"abft-mismatch", e.profile().computeSupersteps, "cg", it, -1,
             0.0, "checksum defect above tolerance"});
        e.writeScalar(abftId, graph::Scalar(0.0f));  // re-arm the flag
      }
      // A NaN/Inf, runaway, or checksum-flagged residual never reaches the
      // history; it either triggers a restart or becomes the typed outcome.
      if (recovery && resPtr->restarts < opts.maxRestarts) {
        ++resPtr->restarts;
        e.profile().metrics.addCounter("cg.restarts", 1);
        e.writeScalar(restartId, graph::Scalar(std::int32_t(1)));
        // Repair the condition scalar so the While loop survives the NaN
        // (NaN comparisons are false and would end the loop prematurely).
        e.writeScalar(resId, graph::Scalar(static_cast<float>(bb)));
        e.profile().faultEvents.push_back(
            {"recovery:restart", e.profile().computeSupersteps, "cg", it, -1,
             0.0,
             bad ? (!std::isfinite(rr)
                        ? "nan residual; re-seeding from checkpoint"
                        : "diverged; re-seeding from checkpoint")
                 : "abft mismatch; re-seeding from checkpoint"});
      } else {
        resPtr->status = bad ? (std::isfinite(rr) ? SolveStatus::Diverged
                                                  : SolveStatus::NanDetected)
                             : SolveStatus::CorruptionDetected;
        resPtr->iterations = it;
        e.writeScalar(okId, graph::Scalar(std::int32_t(0)));
      }
    });
  });

  // Post-loop verification (ABFT only): re-measure the true residual
  // ‖b − A·x‖ from scratch. Corruption that slipped a *small* value into
  // the recurrence's residual norm would otherwise end the loop with a
  // silently wrong "converged" x.
  graph::TensorId verId = graph::kInvalidTensor;
  std::optional<Tensor> verNormSq;
  if (robust_.abft && tolerance_ > 0.0) {
    a.spmv(Ap, x);
    Tensor vr = a.makeVector(DType::Float32, "cg_verify");
    vr = Expression(b) - Expression(Ap);
    verNormSq.emplace(Dot(vr, vr));
    verId = verNormSq->id();
  }

  dsl::HostCall([resPtr, resId, bId, iterId, verId,
                 tolerance](graph::Engine& e) {
    if (resPtr->status != SolveStatus::Running) return;
    const double rr = e.readScalar(resId).toHostDouble();
    const double bb = e.readScalar(bId).toHostDouble();
    const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
    resPtr->iterations =
        static_cast<std::size_t>(e.readScalar(iterId).toHostDouble());
    if (std::isfinite(rel)) resPtr->finalResidual = rel;
    resPtr->status = tolerance > 0.0 && rel <= tolerance
                         ? SolveStatus::Converged
                         : SolveStatus::MaxIterations;
    if (resPtr->status == SolveStatus::Converged &&
        verId != graph::kInvalidTensor) {
      const double vv = e.readScalar(verId).toHostDouble();
      const double vrel = std::sqrt(std::abs(vv) / std::max(bb, 1e-300));
      // Slack over the recurrence tolerance: the float32 recurrence
      // residual legitimately drifts from the true one near convergence.
      if (!(vrel <= 50.0 * tolerance)) {
        resPtr->status = SolveStatus::CorruptionDetected;
        resPtr->finalResidual = vrel;
      }
    }
  });
}

}  // namespace graphene::solver
