#include "support/tile_profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace graphene::support {

// -- TileTrafficMatrix ------------------------------------------------------

void TileTrafficMatrix::init(std::size_t numTiles) {
  if (numTiles_ != 0) {
    GRAPHENE_CHECK(numTiles_ == numTiles,
                   "traffic matrix re-initialised with a different tile "
                   "count: had ",
                   numTiles_, ", got ", numTiles);
    return;
  }
  numTiles_ = numTiles;
  bytes_.assign(numTiles * numTiles, 0);
  messages_.assign(numTiles * numTiles, 0);
}

void TileTrafficMatrix::recordTransfer(std::size_t srcTile,
                                       const std::vector<std::size_t>& dstTiles,
                                       std::size_t bytes) {
  GRAPHENE_DCHECK(srcTile < numTiles_, "traffic src tile out of range");
  std::size_t remote = 0;
  for (std::size_t dst : dstTiles) {
    if (dst != srcTile) ++remote;
  }
  if (remote == 0) return;  // purely tile-local copy: no fabric traffic

  // Split the payload integer-exactly over the remote destinations: the
  // first `bytes % remote` each carry one extra byte. This keeps the matrix
  // total equal to the fabric's payload accounting (which serialises a
  // broadcast payload once on the send side).
  const std::uint64_t each = bytes / remote;
  const std::uint64_t extra = bytes % remote;
  std::uint64_t delivered = 0;
  for (std::size_t dst : dstTiles) {
    if (dst == srcTile) continue;
    GRAPHENE_DCHECK(dst < numTiles_, "traffic dst tile out of range");
    const std::size_t cell = srcTile * numTiles_ + dst;
    bytes_[cell] += each + (delivered < extra ? 1 : 0);
    messages_[cell] += 1;
    ++delivered;
  }
  totalBytes_ += bytes;
  totalMessages_ += remote;
  sendInstructions_ += 1;
}

std::uint64_t TileTrafficMatrix::rowSum(std::size_t src) const {
  std::uint64_t sum = 0;
  for (std::size_t dst = 0; dst < numTiles_; ++dst) {
    sum += bytes_[src * numTiles_ + dst];
  }
  return sum;
}

std::uint64_t TileTrafficMatrix::colSum(std::size_t dst) const {
  std::uint64_t sum = 0;
  for (std::size_t src = 0; src < numTiles_; ++src) {
    sum += bytes_[src * numTiles_ + dst];
  }
  return sum;
}

// -- TileSramProfile --------------------------------------------------------

std::size_t TileSramProfile::peakUsed() const {
  std::size_t peak = 0;
  for (std::size_t hw : highWaterBytes) peak = std::max(peak, hw);
  return peak;
}

// -- TileProfile ------------------------------------------------------------

void TileProfile::init(std::size_t tiles, std::size_t workers,
                       double overheadBytesPerMsg, std::size_t tilesPerChip) {
  if (tilesPerChip == 0) tilesPerChip = tiles;
  if (numTiles != 0) {
    GRAPHENE_CHECK(numTiles == tiles,
                   "tile profile re-attached to an engine with a different "
                   "tile count: had ",
                   numTiles, ", got ", tiles);
    GRAPHENE_CHECK(tilesPerIpu == tilesPerChip,
                   "tile profile re-attached to an engine with a different "
                   "pod shape: had ",
                   tilesPerIpu, " tiles/IPU, got ", tilesPerChip);
    return;
  }
  numTiles = tiles;
  tilesPerIpu = tilesPerChip;
  workersPerTile = workers;
  overheadBytesPerMessage = overheadBytesPerMsg;
  traffic.init(tiles);
}

TileCategoryProfile& TileProfile::category(const std::string& name) {
  TileCategoryProfile& cat = categories[name];
  if (cat.busyCycles.empty()) {
    cat.busyCycles.assign(numTiles, 0.0);
    cat.workerBusyCycles.assign(numTiles, 0.0);
    cat.barrierIdleCycles.assign(numTiles, 0.0);
    cat.criticalCycles.assign(numTiles, 0.0);
  }
  return cat;
}

double TileProfile::categoryCycles(const std::string& name) const {
  auto it = categories.find(name);
  if (it == categories.end()) return 0.0;
  double sum = 0.0;
  for (double c : it->second.criticalCycles) sum += c;
  return sum;
}

double TileProfile::totalComputeCycles() const {
  double sum = 0.0;
  for (const auto& [name, cat] : categories) {
    (void)name;
    for (double c : cat.criticalCycles) sum += c;
  }
  return sum;
}

std::vector<double> TileProfile::busyByTile() const {
  std::vector<double> busy(numTiles, 0.0);
  for (const auto& [name, cat] : categories) {
    (void)name;
    for (std::size_t t = 0; t < numTiles; ++t) busy[t] += cat.busyCycles[t];
  }
  return busy;
}

std::vector<double> TileProfile::criticalByTile() const {
  std::vector<double> crit(numTiles, 0.0);
  for (const auto& [name, cat] : categories) {
    (void)name;
    for (std::size_t t = 0; t < numTiles; ++t) crit[t] += cat.criticalCycles[t];
  }
  return crit;
}

// -- analyses ---------------------------------------------------------------

ImbalanceStats loadImbalance(const TileProfile& profile, std::size_t buckets) {
  ImbalanceStats stats;
  const std::vector<double> busy = profile.busyByTile();
  double sum = 0.0;
  double minBusy = 0.0, maxBusy = 0.0;
  for (double b : busy) {
    if (b <= 0.0) continue;
    if (stats.activeTiles == 0) {
      minBusy = maxBusy = b;
    } else {
      minBusy = std::min(minBusy, b);
      maxBusy = std::max(maxBusy, b);
    }
    ++stats.activeTiles;
    sum += b;
  }
  if (stats.activeTiles == 0) return stats;
  stats.minCycles = minBusy;
  stats.maxCycles = maxBusy;
  stats.meanCycles = sum / static_cast<double>(stats.activeTiles);
  stats.imbalance =
      stats.meanCycles > 0.0 ? stats.maxCycles / stats.meanCycles : 1.0;

  if (buckets == 0) buckets = 1;
  stats.histLow = minBusy;
  stats.histHigh = maxBusy;
  stats.histogram.assign(buckets, 0);
  const double width = (maxBusy - minBusy) / static_cast<double>(buckets);
  for (double b : busy) {
    if (b <= 0.0) continue;
    std::size_t bucket =
        width > 0.0 ? static_cast<std::size_t>((b - minBusy) / width) : 0;
    if (bucket >= buckets) bucket = buckets - 1;  // max lands in last bucket
    ++stats.histogram[bucket];
  }
  return stats;
}

std::vector<StragglerInfo> topStragglers(const TileProfile& profile,
                                         std::size_t k) {
  const std::vector<double> crit = profile.criticalByTile();
  const std::vector<double> busy = profile.busyByTile();

  std::vector<std::size_t> order(profile.numTiles);
  for (std::size_t t = 0; t < order.size(); ++t) order[t] = t;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (crit[a] != crit[b]) return crit[a] > crit[b];
                     return a < b;  // deterministic tie-break: lower tile id
                   });

  std::vector<StragglerInfo> top;
  for (std::size_t t : order) {
    if (top.size() >= k || crit[t] <= 0.0) break;
    StragglerInfo info;
    info.tile = t;
    info.criticalCycles = crit[t];
    info.busyCycles = busy[t];
    double workerBusy = 0.0;
    for (const auto& [name, cat] : profile.categories) {
      workerBusy += cat.workerBusyCycles[t];
      if (cat.criticalCycles[t] > 0.0) {
        info.categories.emplace_back(name, cat.criticalCycles[t]);
      }
    }
    const double capacity =
        busy[t] * static_cast<double>(profile.workersPerTile);
    info.workerUtilisation = capacity > 0.0 ? workerBusy / capacity : 0.0;
    std::stable_sort(info.categories.begin(), info.categories.end(),
                     [](const auto& a, const auto& b) {
                       if (a.second != b.second) return a.second > b.second;
                       return a.first < b.first;
                     });
    top.push_back(std::move(info));
  }
  return top;
}

double trafficLocalityScore(const TileProfile& profile) {
  const TileTrafficMatrix& traffic = profile.traffic;
  if (traffic.empty()) return 0.0;

  // Spatial factor: payload-weighted mean of 1/(1 + |src - dst|). 1.0 when
  // every byte travels to an adjacent tile, decaying with fabric distance.
  const std::size_t n = traffic.numTiles();
  double weighted = 0.0;
  double attributed = 0.0;
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      const double b = static_cast<double>(traffic.bytes(src, dst));
      if (b <= 0.0) continue;
      const double dist = src > dst ? static_cast<double>(src - dst)
                                    : static_cast<double>(dst - src);
      weighted += b / (1.0 + dist);
      attributed += b;
    }
  }
  const double spatial = attributed > 0.0 ? weighted / attributed : 0.0;

  // Wire-efficiency factor: payload over payload plus per-send-instruction
  // overhead priced in send-port bytes. Halo reordering collapses per-cell
  // sends into region broadcasts, cutting instructions for the same payload
  // — exactly the effect this factor rewards.
  const double payload = static_cast<double>(traffic.totalBytes());
  const double overhead = profile.overheadBytesPerMessage *
                          static_cast<double>(traffic.sendInstructions());
  const double efficiency =
      payload > 0.0 ? payload / (payload + overhead) : 0.0;

  return spatial * efficiency;
}

TrafficLocalitySplit trafficLocalitySplit(const TileProfile& profile) {
  TrafficLocalitySplit split;
  const TileTrafficMatrix& traffic = profile.traffic;
  if (traffic.empty()) return split;
  const std::size_t n = traffic.numTiles();
  // Payload-weighted proximity per side: tile distance on-chip, IPU
  // distance across links (the gateway fans out on the remote chip, so tile
  // offsets inside the remote IPU are irrelevant to link traffic).
  double intraWeighted = 0, intraBytes = 0;
  double interWeighted = 0, interBytes = 0;
  for (std::size_t src = 0; src < n; ++src) {
    const std::size_t srcIpu = profile.ipuOfTile(src);
    for (std::size_t dst = 0; dst < n; ++dst) {
      const double b = static_cast<double>(traffic.bytes(src, dst));
      if (b <= 0.0) continue;
      const std::size_t dstIpu = profile.ipuOfTile(dst);
      if (srcIpu == dstIpu) {
        const double dist = src > dst ? static_cast<double>(src - dst)
                                      : static_cast<double>(dst - src);
        intraWeighted += b / (1.0 + dist);
        intraBytes += b;
        split.intraBytes += traffic.bytes(src, dst);
      } else {
        const double dist = srcIpu > dstIpu
                                ? static_cast<double>(srcIpu - dstIpu)
                                : static_cast<double>(dstIpu - srcIpu);
        interWeighted += b / (1.0 + dist);
        interBytes += b;
        split.interBytes += traffic.bytes(src, dst);
      }
    }
  }
  // Same wire-efficiency factor as the combined score: per-send-instruction
  // overhead is charged on the sending tile's port either way.
  const double payload = static_cast<double>(traffic.totalBytes());
  const double overhead = profile.overheadBytesPerMessage *
                          static_cast<double>(traffic.sendInstructions());
  const double efficiency =
      payload > 0.0 ? payload / (payload + overhead) : 0.0;
  split.intraScore =
      intraBytes > 0.0 ? (intraWeighted / intraBytes) * efficiency : 0.0;
  split.interScore =
      interBytes > 0.0 ? (interWeighted / interBytes) * efficiency : 0.0;
  return split;
}

std::vector<CategoryClassification> classifyCategories(
    const TileProfile& profile) {
  const double totalCompute = profile.totalComputeCycles();
  std::vector<CategoryClassification> out;
  for (const auto& [name, cat] : profile.categories) {
    CategoryClassification c;
    c.category = name;
    double busySum = 0.0, workerBusySum = 0.0;
    std::size_t active = 0;
    for (std::size_t t = 0; t < profile.numTiles; ++t) {
      c.criticalCycles += cat.criticalCycles[t];
      if (cat.busyCycles[t] > 0.0) {
        busySum += cat.busyCycles[t];
        workerBusySum += cat.workerBusyCycles[t];
        ++active;
      }
    }
    c.shareOfCompute =
        totalCompute > 0.0 ? c.criticalCycles / totalCompute : 0.0;
    const double meanBusy =
        active > 0 ? busySum / static_cast<double>(active) : 0.0;
    // Critical path over the mean busy time of active tiles: 1.0 means the
    // straggler was no worse than the average tile.
    c.imbalance = meanBusy > 0.0 ? c.criticalCycles / meanBusy : 1.0;
    const double capacity =
        busySum * static_cast<double>(profile.workersPerTile);
    c.workerUtilisation = capacity > 0.0 ? workerBusySum / capacity : 0.0;
    if (c.imbalance > 1.25) {
      c.klass = "imbalance-bound";
    } else if (c.workerUtilisation >= 0.5) {
      c.klass = "compute-bound";
    } else {
      c.klass = "worker-idle";
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::string runClassification(const TileProfile& profile) {
  const double compute = profile.totalComputeCycles();
  return profile.exchangeCycles > compute ? "exchange-bound" : "compute-bound";
}

// -- diff -------------------------------------------------------------------

TileProfileDiff diffTileProfiles(const TileProfile& a, const TileProfile& b) {
  TileProfileDiff diff;
  diff.totalCyclesA = a.totalCycles();
  diff.totalCyclesB = b.totalCycles();
  diff.computeCyclesA = a.totalComputeCycles();
  diff.computeCyclesB = b.totalComputeCycles();
  diff.exchangeCyclesA = a.exchangeCycles;
  diff.exchangeCyclesB = b.exchangeCycles;
  diff.trafficBytesA = a.traffic.totalBytes();
  diff.trafficBytesB = b.traffic.totalBytes();
  diff.interIpuBytesA = trafficLocalitySplit(a).interBytes;
  diff.interIpuBytesB = trafficLocalitySplit(b).interBytes;
  diff.messagesA = a.traffic.totalMessages();
  diff.messagesB = b.traffic.totalMessages();
  diff.localityA = trafficLocalityScore(a);
  diff.localityB = trafficLocalityScore(b);
  diff.imbalanceA = loadImbalance(a).imbalance;
  diff.imbalanceB = loadImbalance(b).imbalance;

  std::map<std::string, TileProfileDiff::CategoryDelta> deltas;
  for (const auto& [name, cat] : a.categories) {
    (void)cat;
    deltas[name].category = name;
    deltas[name].cyclesA = a.categoryCycles(name);
  }
  for (const auto& [name, cat] : b.categories) {
    (void)cat;
    deltas[name].category = name;
    deltas[name].cyclesB = b.categoryCycles(name);
  }
  for (auto& [name, delta] : deltas) {
    (void)name;
    diff.categories.push_back(std::move(delta));
  }
  return diff;
}

bool diffWithinThresholds(const TileProfileDiff& diff,
                          double maxCyclesRegressFrac, double minLocalityRatio,
                          std::string* why,
                          double maxInterBytesRegressFrac) {
  if (maxCyclesRegressFrac >= 0.0 && diff.totalCyclesA > 0.0) {
    const double regress = diff.cyclesRatio() - 1.0;
    if (regress > maxCyclesRegressFrac) {
      if (why != nullptr) {
        std::ostringstream oss;
        oss << "total cycles regressed " << formatSig(regress * 100.0, 3)
            << "% (limit " << formatSig(maxCyclesRegressFrac * 100.0, 3)
            << "%): " << formatSig(diff.totalCyclesA, 6) << " -> "
            << formatSig(diff.totalCyclesB, 6);
        *why = oss.str();
      }
      return false;
    }
  }
  if (minLocalityRatio >= 0.0 && diff.localityA > 0.0) {
    if (diff.localityRatio() < minLocalityRatio) {
      if (why != nullptr) {
        std::ostringstream oss;
        oss << "traffic locality fell to " << formatSig(diff.localityRatio(), 4)
            << "x of baseline (minimum " << formatSig(minLocalityRatio, 4)
            << "x): " << formatSig(diff.localityA, 4) << " -> "
            << formatSig(diff.localityB, 4);
        *why = oss.str();
      }
      return false;
    }
  }
  if (maxInterBytesRegressFrac >= 0.0 && diff.interIpuBytesA > 0) {
    const double regress = diff.interIpuBytesRatio() - 1.0;
    if (regress > maxInterBytesRegressFrac) {
      if (why != nullptr) {
        std::ostringstream oss;
        oss << "inter-IPU bytes regressed " << formatSig(regress * 100.0, 3)
            << "% (limit " << formatSig(maxInterBytesRegressFrac * 100.0, 3)
            << "%): " << diff.interIpuBytesA << " -> " << diff.interIpuBytesB;
        *why = oss.str();
      }
      return false;
    }
  }
  return true;
}

// -- JSON -------------------------------------------------------------------

namespace {

json::Array doublesToJson(const std::vector<double>& values) {
  json::Array arr;
  arr.reserve(values.size());
  for (double v : values) arr.emplace_back(v);
  return arr;
}

json::Array u64ToJson(const std::vector<std::uint64_t>& values) {
  json::Array arr;
  arr.reserve(values.size());
  for (std::uint64_t v : values) {
    arr.emplace_back(static_cast<double>(v));
  }
  return arr;
}

json::Array sizesToJson(const std::vector<std::size_t>& values) {
  json::Array arr;
  arr.reserve(values.size());
  for (std::size_t v : values) arr.emplace_back(v);
  return arr;
}

std::vector<double> doublesFromJson(const json::Value& v, std::size_t expect,
                                    const char* what) {
  const json::Array& arr = v.asArray();
  GRAPHENE_CHECK(arr.size() == expect, "tile profile JSON: ", what, " has ",
                 arr.size(), " entries, expected ", expect);
  std::vector<double> out;
  out.reserve(arr.size());
  for (const json::Value& e : arr) out.push_back(e.asNumber());
  return out;
}

std::vector<std::uint64_t> u64FromJson(const json::Value& v, std::size_t expect,
                                       const char* what) {
  const json::Array& arr = v.asArray();
  GRAPHENE_CHECK(arr.size() == expect, "tile profile JSON: ", what, " has ",
                 arr.size(), " entries, expected ", expect);
  std::vector<std::uint64_t> out;
  out.reserve(arr.size());
  for (const json::Value& e : arr) {
    out.push_back(static_cast<std::uint64_t>(e.asNumber()));
  }
  return out;
}

std::vector<std::size_t> sizesFromJson(const json::Value& v, std::size_t expect,
                                       const char* what) {
  std::vector<std::uint64_t> u = u64FromJson(v, expect, what);
  return std::vector<std::size_t>(u.begin(), u.end());
}

}  // namespace

json::Value tileProfileToJson(const TileProfile& profile) {
  json::Object doc;
  doc["schemaVersion"] = TileProfile::kSchemaVersion;
  doc["numTiles"] = profile.numTiles;
  doc["tilesPerIpu"] = profile.tilesPerIpu;
  doc["workersPerTile"] = profile.workersPerTile;
  doc["overheadBytesPerMessage"] = profile.overheadBytesPerMessage;
  doc["label"] = profile.label;
  doc["computeSupersteps"] = profile.computeSupersteps;
  doc["exchangeSupersteps"] = profile.exchangeSupersteps;
  doc["exchangeCycles"] = profile.exchangeCycles;
  doc["exchangeInterCycles"] = profile.exchangeInterCycles;
  doc["syncCycles"] = profile.syncCycles;

  json::Object categories;
  for (const auto& [name, cat] : profile.categories) {
    json::Object c;
    c["supersteps"] = cat.supersteps;
    c["busyCycles"] = doublesToJson(cat.busyCycles);
    c["workerBusyCycles"] = doublesToJson(cat.workerBusyCycles);
    c["barrierIdleCycles"] = doublesToJson(cat.barrierIdleCycles);
    c["criticalCycles"] = doublesToJson(cat.criticalCycles);
    categories[name] = std::move(c);
  }
  doc["categories"] = std::move(categories);

  json::Object traffic;
  traffic["bytes"] = u64ToJson(profile.traffic.bytesPlane());
  traffic["messages"] = u64ToJson(profile.traffic.messagesPlane());
  traffic["totalBytes"] = static_cast<double>(profile.traffic.totalBytes());
  traffic["totalMessages"] =
      static_cast<double>(profile.traffic.totalMessages());
  traffic["sendInstructions"] =
      static_cast<double>(profile.traffic.sendInstructions());
  doc["traffic"] = std::move(traffic);

  json::Object sram;
  sram["budgetBytes"] = profile.sram.budgetBytes;
  sram["usedBytes"] = sizesToJson(profile.sram.usedBytes);
  sram["highWaterBytes"] = sizesToJson(profile.sram.highWaterBytes);
  json::Array tensors;
  for (const TileSramProfile::TensorSram& t : profile.sram.tensors) {
    json::Object tj;
    tj["name"] = t.name;
    tj["dtype"] = t.dtype;
    tj["bytesPerTile"] = sizesToJson(t.bytesPerTile);
    tensors.emplace_back(std::move(tj));
  }
  sram["tensors"] = std::move(tensors);
  doc["sram"] = std::move(sram);

  return json::Value(std::move(doc));
}

TileProfile tileProfileFromJson(const json::Value& doc) {
  GRAPHENE_CHECK(doc.isObject(), "tile profile JSON: document is not an object");
  const std::int64_t version = doc.getOr("schemaVersion", std::int64_t{0});
  // v1 reports predate pods: no tilesPerIpu (= numTiles) and no inter-IPU
  // cycle split (= 0). Both defaults below express exactly that.
  GRAPHENE_CHECK(version == 1 || version == TileProfile::kSchemaVersion,
                 "tile profile JSON: unsupported schemaVersion ", version,
                 " (this build reads versions 1 and ",
                 TileProfile::kSchemaVersion, ")");

  TileProfile profile;
  const std::size_t n = static_cast<std::size_t>(doc.at("numTiles").asInt());
  profile.init(n,
               static_cast<std::size_t>(doc.at("workersPerTile").asInt()),
               doc.at("overheadBytesPerMessage").asNumber(),
               static_cast<std::size_t>(
                   doc.getOr("tilesPerIpu", static_cast<std::int64_t>(n))));
  profile.label = doc.getOr("label", std::string());
  profile.computeSupersteps =
      static_cast<std::size_t>(doc.getOr("computeSupersteps", std::int64_t{0}));
  profile.exchangeSupersteps = static_cast<std::size_t>(
      doc.getOr("exchangeSupersteps", std::int64_t{0}));
  profile.exchangeCycles = doc.getOr("exchangeCycles", 0.0);
  profile.exchangeInterCycles = doc.getOr("exchangeInterCycles", 0.0);
  profile.syncCycles = doc.getOr("syncCycles", 0.0);

  for (const auto& [name, cj] : doc.at("categories").asObject()) {
    TileCategoryProfile& cat = profile.category(name);
    cat.supersteps =
        static_cast<std::size_t>(cj.getOr("supersteps", std::int64_t{0}));
    cat.busyCycles = doublesFromJson(cj.at("busyCycles"), n, "busyCycles");
    cat.workerBusyCycles =
        doublesFromJson(cj.at("workerBusyCycles"), n, "workerBusyCycles");
    cat.barrierIdleCycles =
        doublesFromJson(cj.at("barrierIdleCycles"), n, "barrierIdleCycles");
    cat.criticalCycles =
        doublesFromJson(cj.at("criticalCycles"), n, "criticalCycles");
  }

  const json::Value& traffic = doc.at("traffic");
  profile.traffic.mutableBytesPlane() =
      u64FromJson(traffic.at("bytes"), n * n, "traffic bytes");
  profile.traffic.mutableMessagesPlane() =
      u64FromJson(traffic.at("messages"), n * n, "traffic messages");
  profile.traffic.setTotals(
      static_cast<std::uint64_t>(traffic.at("totalBytes").asNumber()),
      static_cast<std::uint64_t>(traffic.at("totalMessages").asNumber()),
      static_cast<std::uint64_t>(traffic.at("sendInstructions").asNumber()));

  const json::Value& sram = doc.at("sram");
  profile.sram.budgetBytes =
      static_cast<std::size_t>(sram.at("budgetBytes").asInt());
  profile.sram.usedBytes = sizesFromJson(sram.at("usedBytes"), n, "usedBytes");
  profile.sram.highWaterBytes =
      sizesFromJson(sram.at("highWaterBytes"), n, "highWaterBytes");
  for (const json::Value& tj : sram.at("tensors").asArray()) {
    TileSramProfile::TensorSram t;
    t.name = tj.at("name").asString();
    t.dtype = tj.at("dtype").asString();
    t.bytesPerTile = sizesFromJson(tj.at("bytesPerTile"), n, "bytesPerTile");
    profile.sram.tensors.push_back(std::move(t));
  }
  return profile;
}

// -- text tables ------------------------------------------------------------

TextTable tileProfileSummaryTable(const TileProfile& profile) {
  TextTable table({"Category", "Supersteps", "Cycles", "% of compute",
                   "Imbalance", "Worker util", "Class"});
  const std::vector<CategoryClassification> classes =
      classifyCategories(profile);
  for (const CategoryClassification& c : classes) {
    auto it = profile.categories.find(c.category);
    const std::size_t supersteps =
        it != profile.categories.end() ? it->second.supersteps : 0;
    table.addRow({c.category, std::to_string(supersteps),
                  formatSig(c.criticalCycles, 6),
                  formatSig(c.shareOfCompute * 100.0, 3) + "%",
                  formatSig(c.imbalance, 4) + "x",
                  formatSig(c.workerUtilisation * 100.0, 3) + "%", c.klass});
  }
  return table;
}

TextTable tileStragglerTable(const TileProfile& profile, std::size_t k) {
  TextTable table({"Tile", "Critical cycles", "Busy cycles", "Worker util",
                   "Dominant categories"});
  for (const StragglerInfo& s : topStragglers(profile, k)) {
    std::string cats;
    std::size_t shown = 0;
    for (const auto& [name, cycles] : s.categories) {
      if (shown++ == 3) break;
      if (!cats.empty()) cats += ", ";
      cats += name + " (" + formatSig(cycles, 4) + ")";
    }
    table.addRow({std::to_string(s.tile), formatSig(s.criticalCycles, 6),
                  formatSig(s.busyCycles, 6),
                  formatSig(s.workerUtilisation * 100.0, 3) + "%", cats});
  }
  return table;
}

TextTable tileProfileDiffTable(const TileProfileDiff& diff) {
  TextTable table({"Metric", "A", "B", "B/A"});
  auto ratio = [](double a, double b) {
    return a > 0.0 ? formatSig(b / a, 4) + "x" : "n/a";
  };
  table.addRow({"Total cycles", formatSig(diff.totalCyclesA, 6),
                formatSig(diff.totalCyclesB, 6),
                ratio(diff.totalCyclesA, diff.totalCyclesB)});
  table.addRow({"Compute cycles", formatSig(diff.computeCyclesA, 6),
                formatSig(diff.computeCyclesB, 6),
                ratio(diff.computeCyclesA, diff.computeCyclesB)});
  table.addRow({"Exchange cycles", formatSig(diff.exchangeCyclesA, 6),
                formatSig(diff.exchangeCyclesB, 6),
                ratio(diff.exchangeCyclesA, diff.exchangeCyclesB)});
  table.addRow({"Traffic bytes",
                formatBytes(static_cast<double>(diff.trafficBytesA)),
                formatBytes(static_cast<double>(diff.trafficBytesB)),
                ratio(static_cast<double>(diff.trafficBytesA),
                      static_cast<double>(diff.trafficBytesB))});
  table.addRow({"Inter-IPU bytes",
                formatBytes(static_cast<double>(diff.interIpuBytesA)),
                formatBytes(static_cast<double>(diff.interIpuBytesB)),
                ratio(static_cast<double>(diff.interIpuBytesA),
                      static_cast<double>(diff.interIpuBytesB))});
  table.addRow({"Messages", std::to_string(diff.messagesA),
                std::to_string(diff.messagesB),
                ratio(static_cast<double>(diff.messagesA),
                      static_cast<double>(diff.messagesB))});
  table.addRow({"Traffic locality", formatSig(diff.localityA, 4),
                formatSig(diff.localityB, 4),
                ratio(diff.localityA, diff.localityB)});
  table.addRow({"Load imbalance", formatSig(diff.imbalanceA, 4) + "x",
                formatSig(diff.imbalanceB, 4) + "x",
                ratio(diff.imbalanceA, diff.imbalanceB)});
  for (const TileProfileDiff::CategoryDelta& d : diff.categories) {
    table.addRow({"  cycles: " + d.category, formatSig(d.cyclesA, 6),
                  formatSig(d.cyclesB, 6), ratio(d.cyclesA, d.cyclesB)});
  }
  return table;
}

// -- HTML -------------------------------------------------------------------

namespace {

std::string htmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// White -> amber -> red ramp for a normalised intensity in [0, 1].
std::string heatColor(double t) {
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  const int r = 255;
  const int g = static_cast<int>(245.0 - 160.0 * t);
  const int b = static_cast<int>(235.0 - 225.0 * t);
  char buf[16];
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x", r, g, b);
  return buf;
}

/// Renders a near-square tile grid of per-tile values as fixed-size cells.
void appendTileHeatmap(std::ostream& os, const std::string& title,
                       const std::vector<double>& values,
                       const std::string& unit) {
  double maxValue = 0.0;
  for (double v : values) maxValue = std::max(maxValue, v);
  std::size_t cols = 1;
  while (cols * cols < values.size()) ++cols;

  os << "<h3>" << htmlEscape(title) << "</h3>\n";
  os << "<div class=\"grid\" style=\"grid-template-columns:repeat(" << cols
     << ",14px)\">\n";
  for (std::size_t t = 0; t < values.size(); ++t) {
    const double norm = maxValue > 0.0 ? values[t] / maxValue : 0.0;
    os << "<div class=\"cell\" style=\"background:" << heatColor(norm)
       << "\" title=\"tile " << t << ": " << formatSig(values[t], 5) << " "
       << unit << "\"></div>";
    if ((t + 1) % cols == 0) os << "\n";
  }
  os << "</div>\n<p class=\"scale\">0 &rarr; " << formatSig(maxValue, 5) << " "
     << htmlEscape(unit) << "</p>\n";
}

void appendTable(std::ostream& os, const TextTable& table) {
  os << "<pre>" << htmlEscape(table.render()) << "</pre>\n";
}

}  // namespace

std::string tileProfileToHtml(const TileProfile& profile) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>Graphene tile profile</title>\n<style>\n"
     << "body{font-family:sans-serif;margin:24px;max-width:1100px}\n"
     << ".grid{display:grid;gap:1px}\n"
     << ".cell{width:14px;height:14px}\n"
     << ".tcell{width:10px;height:10px}\n"
     << ".scale{color:#666;font-size:12px}\n"
     << "pre{background:#f6f6f6;padding:8px;overflow-x:auto}\n"
     << "</style>\n</head>\n<body>\n";

  os << "<h1>Tile profile";
  if (!profile.label.empty()) os << " &mdash; " << htmlEscape(profile.label);
  os << "</h1>\n";

  const ImbalanceStats imbalance = loadImbalance(profile);
  os << "<p>" << profile.numTiles << " tiles";
  if (profile.numIpus() > 1) {
    os << " (" << profile.numIpus() << " IPUs &times; " << profile.tilesPerIpu
       << " tiles)";
  }
  os << " &middot; " << profile.workersPerTile << " workers/tile &middot; "
     << profile.computeSupersteps << " compute / "
     << profile.exchangeSupersteps << " exchange supersteps &middot; "
     << "total " << formatSig(profile.totalCycles(), 6) << " cycles ("
     << runClassification(profile) << ") &middot; load imbalance "
     << formatSig(imbalance.imbalance, 4) << "x &middot; traffic locality "
     << formatSig(trafficLocalityScore(profile), 4) << "</p>\n";
  if (profile.numIpus() > 1) {
    const TrafficLocalitySplit split = trafficLocalitySplit(profile);
    os << "<p>Two-level exchange: intra-IPU "
       << formatBytes(static_cast<double>(split.intraBytes)) << " (locality "
       << formatSig(split.intraScore, 4) << ") &middot; inter-IPU "
       << formatBytes(static_cast<double>(split.interBytes)) << " (locality "
       << formatSig(split.interScore, 4) << ") &middot; IPU-Link share of "
       << "exchange " << formatSig(profile.exchangeInterCycles, 6) << " of "
       << formatSig(profile.exchangeCycles, 6) << " cycles</p>\n";
  }

  os << "<h2>Categories</h2>\n";
  appendTable(os, tileProfileSummaryTable(profile));

  os << "<h2>Stragglers</h2>\n";
  appendTable(os, tileStragglerTable(profile));

  os << "<h2>Tile heatmaps</h2>\n";
  appendTileHeatmap(os, "Busy cycles per tile", profile.busyByTile(),
                    "cycles");
  appendTileHeatmap(os, "Critical-path attribution per tile",
                    profile.criticalByTile(), "cycles");
  if (!profile.sram.highWaterBytes.empty()) {
    std::vector<double> sram(profile.sram.highWaterBytes.begin(),
                             profile.sram.highWaterBytes.end());
    appendTileHeatmap(os, "SRAM high-water per tile (budget " +
                              formatBytes(static_cast<double>(
                                  profile.sram.budgetBytes)) +
                              ")",
                      sram, "bytes");
  }

  if (!profile.traffic.empty() && profile.numIpus() > 1) {
    // Pod runs: split the per-tile send volume into the on-chip fabric
    // share and the IPU-Link share — the two components the pod-aware
    // partitioner and halo aggregation trade against each other.
    const std::size_t n = profile.traffic.numTiles();
    std::vector<double> intraSent(n, 0.0), interSent(n, 0.0);
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        const auto b = static_cast<double>(profile.traffic.bytes(src, dst));
        if (b <= 0.0) continue;
        if (profile.ipuOfTile(src) == profile.ipuOfTile(dst)) {
          intraSent[src] += b;
        } else {
          interSent[src] += b;
        }
      }
    }
    appendTileHeatmap(os, "Intra-IPU bytes sent per tile", intraSent, "bytes");
    appendTileHeatmap(os, "Inter-IPU (IPU-Link) bytes sent per tile",
                      interSent, "bytes");
  }

  if (!profile.traffic.empty()) {
    const std::size_t n = profile.traffic.numTiles();
    double maxBytes = 0.0;
    for (std::uint64_t b : profile.traffic.bytesPlane()) {
      maxBytes = std::max(maxBytes, static_cast<double>(b));
    }
    // Log-ish scale: small payloads must stay visible next to broadcasts.
    os << "<h2>Exchange traffic (src row &times; dst column)</h2>\n";
    os << "<div class=\"grid\" style=\"grid-template-columns:repeat(" << n
       << ",10px)\">\n";
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        const double b =
            static_cast<double>(profile.traffic.bytes(src, dst));
        const double norm =
            b > 0.0 && maxBytes > 0.0
                ? 0.15 + 0.85 * std::log1p(b) / std::log1p(maxBytes)
                : 0.0;
        os << "<div class=\"tcell\" style=\"background:" << heatColor(norm)
           << "\" title=\"" << src << " &rarr; " << dst << ": "
           << formatBytes(b) << ", "
           << profile.traffic.messages(src, dst) << " msg\"></div>";
      }
      os << "\n";
    }
    os << "</div>\n<p class=\"scale\">"
       << formatBytes(static_cast<double>(profile.traffic.totalBytes()))
       << " payload in " << profile.traffic.totalMessages()
       << " messages (" << profile.traffic.sendInstructions()
       << " send instructions)</p>\n";
  }

  if (!profile.sram.tensors.empty()) {
    os << "<h2>SRAM by tensor</h2>\n";
    TextTable table({"Tensor", "Dtype", "Total", "Max per tile"});
    std::vector<const TileSramProfile::TensorSram*> tensors;
    for (const TileSramProfile::TensorSram& t : profile.sram.tensors) {
      tensors.push_back(&t);
    }
    std::stable_sort(tensors.begin(), tensors.end(),
                     [](const auto* a, const auto* b) {
                       std::size_t ta = 0, tb = 0;
                       for (std::size_t v : a->bytesPerTile) ta += v;
                       for (std::size_t v : b->bytesPerTile) tb += v;
                       if (ta != tb) return ta > tb;
                       return a->name < b->name;
                     });
    std::size_t shown = 0;
    for (const auto* t : tensors) {
      if (shown++ == 20) break;
      std::size_t total = 0, maxTile = 0;
      for (std::size_t v : t->bytesPerTile) {
        total += v;
        maxTile = std::max(maxTile, v);
      }
      table.addRow({t->name, t->dtype,
                    formatBytes(static_cast<double>(total)),
                    formatBytes(static_cast<double>(maxTile))});
    }
    appendTable(os, table);
    if (tensors.size() > 20) {
      os << "<p class=\"scale\">(" << tensors.size() - 20
         << " smaller tensors omitted)</p>\n";
    }
  }

  os << "</body>\n</html>\n";
  return os.str();
}

}  // namespace graphene::support
