// graphene-prof — command-line front end for tile-profile reports.
//
// Reports are produced by SolveSession::enableTileProfile() (or any engine
// with a TileProfile attached) and written as JSON; this tool renders them
// as summary tables or a self-contained HTML page, and diffs two reports
// for A/B runs (halo reordering on/off, GRAPHENE_NO_FASTPATH, partitioner
// changes). `diff` can gate CI: with thresholds given it exits nonzero on a
// regression.
//
//   graphene-prof summary <report.json>
//   graphene-prof diff <baseline.json> <candidate.json>
//       [--max-cycles-regress <pct>] [--min-locality-ratio <x>]
//   graphene-prof html <report.json> <out.html>
//
// Exit codes: 0 ok, 1 regression past a threshold, 2 usage/input error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/tile_profile.hpp"

namespace {

using graphene::support::TileProfile;

int usage() {
  std::fprintf(
      stderr,
      "usage: graphene-prof <command> ...\n"
      "  summary <report.json>                   print summary tables\n"
      "  diff <baseline.json> <candidate.json>   compare two reports\n"
      "       [--max-cycles-regress <pct>]       fail if total cycles regress\n"
      "                                          more than <pct> percent\n"
      "       [--min-locality-ratio <x>]         fail if candidate locality\n"
      "                                          < x * baseline locality\n"
      "       [--max-inter-bytes-regress <pct>]  fail if inter-IPU bytes\n"
      "                                          regress more than <pct>\n"
      "  html <report.json> <out.html>           write a self-contained HTML\n"
      "                                          report with heatmaps\n");
  return 2;
}

TileProfile loadReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw graphene::Error("cannot open report file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return graphene::support::tileProfileFromJson(
      graphene::json::parse(buf.str()));
}

int runSummary(const std::string& path) {
  const TileProfile profile = loadReport(path);
  const graphene::support::ImbalanceStats imbalance =
      graphene::support::loadImbalance(profile);

  std::printf("Tile profile: %s\n",
              profile.label.empty() ? "(unlabelled)" : profile.label.c_str());
  std::printf(
      "%zu tiles, %zu workers/tile; %zu compute + %zu exchange supersteps\n",
      profile.numTiles, profile.workersPerTile, profile.computeSupersteps,
      profile.exchangeSupersteps);
  std::printf(
      "total %s cycles (compute %s, exchange %s, sync %s) — %s\n",
      graphene::formatSig(profile.totalCycles(), 6).c_str(),
      graphene::formatSig(profile.totalComputeCycles(), 6).c_str(),
      graphene::formatSig(profile.exchangeCycles, 6).c_str(),
      graphene::formatSig(profile.syncCycles, 6).c_str(),
      graphene::support::runClassification(profile).c_str());
  std::printf(
      "load imbalance %sx over %zu active tiles; traffic locality %s\n",
      graphene::formatSig(imbalance.imbalance, 4).c_str(),
      imbalance.activeTiles,
      graphene::formatSig(graphene::support::trafficLocalityScore(profile), 4)
          .c_str());
  if (profile.numIpus() > 1) {
    const graphene::support::TrafficLocalitySplit split =
        graphene::support::trafficLocalitySplit(profile);
    std::printf(
        "pod %zu IPUs x %zu tiles: intra-IPU %s (locality %s), "
        "inter-IPU %s (locality %s); IPU-Link exchange %s of %s cycles\n",
        profile.numIpus(), profile.tilesPerIpu,
        graphene::formatBytes(static_cast<double>(split.intraBytes)).c_str(),
        graphene::formatSig(split.intraScore, 4).c_str(),
        graphene::formatBytes(static_cast<double>(split.interBytes)).c_str(),
        graphene::formatSig(split.interScore, 4).c_str(),
        graphene::formatSig(profile.exchangeInterCycles, 6).c_str(),
        graphene::formatSig(profile.exchangeCycles, 6).c_str());
  }
  std::printf("\n");

  std::printf("%s\n",
              graphene::support::tileProfileSummaryTable(profile).render()
                  .c_str());
  std::printf("Top stragglers:\n%s\n",
              graphene::support::tileStragglerTable(profile).render().c_str());

  if (!profile.traffic.empty()) {
    std::printf(
        "Exchange: %s payload in %llu messages (%llu send instructions)\n",
        graphene::formatBytes(static_cast<double>(profile.traffic.totalBytes()))
            .c_str(),
        static_cast<unsigned long long>(profile.traffic.totalMessages()),
        static_cast<unsigned long long>(profile.traffic.sendInstructions()));
  }
  if (!profile.sram.highWaterBytes.empty()) {
    std::printf("SRAM: peak %s of %s per-tile budget\n",
                graphene::formatBytes(
                    static_cast<double>(profile.sram.peakUsed()))
                    .c_str(),
                graphene::formatBytes(
                    static_cast<double>(profile.sram.budgetBytes))
                    .c_str());
  }
  return 0;
}

int runDiff(int argc, char** argv) {
  std::string pathA, pathB;
  double maxCyclesRegressFrac = -1.0;  // negative = check disabled
  double minLocalityRatio = -1.0;
  double maxInterBytesRegressFrac = -1.0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-cycles-regress") {
      if (++i >= argc) return usage();
      maxCyclesRegressFrac = std::atof(argv[i]) / 100.0;
    } else if (arg == "--min-locality-ratio") {
      if (++i >= argc) return usage();
      minLocalityRatio = std::atof(argv[i]);
    } else if (arg == "--max-inter-bytes-regress") {
      if (++i >= argc) return usage();
      maxInterBytesRegressFrac = std::atof(argv[i]) / 100.0;
    } else if (pathA.empty()) {
      pathA = arg;
    } else if (pathB.empty()) {
      pathB = arg;
    } else {
      return usage();
    }
  }
  if (pathA.empty() || pathB.empty()) return usage();

  const TileProfile a = loadReport(pathA);
  const TileProfile b = loadReport(pathB);
  const graphene::support::TileProfileDiff diff =
      graphene::support::diffTileProfiles(a, b);
  std::printf("A: %s (%s)\nB: %s (%s)\n\n%s\n", pathA.c_str(),
              a.label.empty() ? "unlabelled" : a.label.c_str(), pathB.c_str(),
              b.label.empty() ? "unlabelled" : b.label.c_str(),
              graphene::support::tileProfileDiffTable(diff).render().c_str());

  std::string why;
  if (!graphene::support::diffWithinThresholds(diff, maxCyclesRegressFrac,
                                               minLocalityRatio, &why,
                                               maxInterBytesRegressFrac)) {
    std::fprintf(stderr, "REGRESSION: %s\n", why.c_str());
    return 1;
  }
  return 0;
}

int runHtml(const std::string& reportPath, const std::string& outPath) {
  const TileProfile profile = loadReport(reportPath);
  std::ofstream out(outPath, std::ios::binary);
  if (!out) {
    throw graphene::Error("cannot write '" + outPath + "'");
  }
  out << graphene::support::tileProfileToHtml(profile);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "summary") {
      if (argc != 3) return usage();
      return runSummary(argv[2]);
    }
    if (command == "diff") {
      return runDiff(argc, argv);
    }
    if (command == "html") {
      if (argc != 4) return usage();
      return runHtml(argv[2], argv[3]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "graphene-prof: %s\n", e.what());
    return 2;
  }
  return usage();
}
