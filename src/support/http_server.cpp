#include "support/http_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "support/error.hpp"

namespace graphene::support {

namespace {

const char* statusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
  }
  return "OK";
}

/// Writes the whole buffer, retrying on EINTR / partial writes.
bool writeAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until the header terminator (a GET carries no body), with a hard
/// size cap so a garbage client cannot balloon the buffer.
bool readRequestHead(int fd, std::string& head) {
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > 16 * 1024) return false;
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    head.append(buf, static_cast<std::size_t>(n));
  }
  return true;
}

void sendResponse(int fd, const HttpServer::Response& r) {
  std::ostringstream os;
  os << "HTTP/1.1 " << r.status << " " << statusText(r.status) << "\r\n"
     << "Content-Type: " << r.contentType << "\r\n"
     << "Content-Length: " << r.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << r.body;
  const std::string out = os.str();
  (void)writeAll(fd, out.data(), out.size());
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::start(std::uint16_t port, Handler handler) {
  GRAPHENE_CHECK(!running(), "HttpServer::start() while already running");
  GRAPHENE_CHECK(handler != nullptr, "HttpServer::start() needs a handler");
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GRAPHENE_CHECK(fd >= 0, "HttpServer: socket() failed: ",
                 std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // telemetry stays local
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    GRAPHENE_CHECK(false, "HttpServer: bind(127.0.0.1:", port,
                   ") failed: ", std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    GRAPHENE_CHECK(false, "HttpServer: listen() failed: ",
                   std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  GRAPHENE_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
      "HttpServer: getsockname() failed: ", std::strerror(errno));

  listenFd_ = fd;
  port_ = ntohs(bound.sin_port);
  stop_.store(false, std::memory_order_release);
  requests_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { acceptLoop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  port_ = 0;
}

void HttpServer::acceptLoop() {
  // Poll with a short timeout instead of blocking in accept(): stop() only
  // has to flip the flag and join — no self-pipe, no signal games, and the
  // shutdown is deterministic (at most one poll interval late).
  pollfd pfd{listenFd_, POLLIN, 0};
  while (!stop_.load(std::memory_order_acquire)) {
    const int ready = ::poll(&pfd, 1, /*ms=*/50);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept(listenFd_, nullptr, nullptr);
    if (client < 0) continue;

    std::string head;
    Response response;
    if (!readRequestHead(client, head)) {
      response = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else {
      std::istringstream line(head.substr(0, head.find("\r\n")));
      std::string method, target, version;
      line >> method >> target >> version;
      if (method != "GET") {
        response = {405, "text/plain; charset=utf-8",
                    "only GET is supported\n"};
      } else {
        // Strip any query string: handlers dispatch on the bare path.
        const std::size_t q = target.find('?');
        const std::string path =
            q == std::string::npos ? target : target.substr(0, q);
        try {
          response = handler_(path.empty() ? "/" : path);
        } catch (const std::exception& e) {
          response = {500, "text/plain; charset=utf-8",
                      std::string("internal error: ") + e.what() + "\n"};
        } catch (...) {
          response = {500, "text/plain; charset=utf-8",
                      "internal error\n"};
        }
      }
    }
    // Counted before the response bytes go out: a client that saw a reply
    // must also see requestsServed() >= 1 (tests poll exactly that).
    requests_.fetch_add(1, std::memory_order_relaxed);
    sendResponse(client, response);
    ::close(client);
  }
}

HttpServer::Response httpGet(std::uint16_t port, const std::string& path,
                             double timeoutSeconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  GRAPHENE_CHECK(fd >= 0, "httpGet: socket() failed: ", std::strerror(errno));
  timeval tv{};
  tv.tv_sec = static_cast<long>(timeoutSeconds);
  tv.tv_usec = static_cast<long>((timeoutSeconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    GRAPHENE_CHECK(false, "httpGet: connect(127.0.0.1:", port,
                   ") failed: ", std::strerror(err));
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!writeAll(fd, request.data(), request.size())) {
    const int err = errno;
    ::close(fd);
    GRAPHENE_CHECK(false, "httpGet: send failed: ", std::strerror(err));
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t headerEnd = raw.find("\r\n\r\n");
  GRAPHENE_CHECK(headerEnd != std::string::npos,
                 "httpGet: malformed response (no header terminator) from "
                 "port ", port);
  std::istringstream status(raw.substr(0, raw.find("\r\n")));
  std::string version;
  HttpServer::Response r;
  status >> version >> r.status;
  GRAPHENE_CHECK(version.rfind("HTTP/", 0) == 0 && r.status > 0,
                 "httpGet: malformed status line from port ", port);
  // Content-Type is informational for callers; a case-insensitive scan of
  // the header block is all we need.
  std::istringstream headers(raw.substr(0, headerEnd));
  std::string headerLine;
  while (std::getline(headers, headerLine)) {
    std::string lower = headerLine;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower.rfind("content-type:", 0) == 0) {
      std::string v = headerLine.substr(std::strlen("content-type:"));
      while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
        v.erase(v.begin());
      }
      while (!v.empty() && (v.back() == '\r' || v.back() == '\n')) {
        v.pop_back();
      }
      r.contentType = v;
    }
  }
  r.body = raw.substr(headerEnd + 4);
  return r;
}

}  // namespace graphene::support
