#include "support/error.hpp"

namespace graphene::detail {

void throwCheckFailure(const char* kind, const char* condition,
                       const char* file, int line,
                       const std::string& message) {
  std::ostringstream oss;
  oss << kind << " failed: " << condition << " at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw Error(oss.str());
}

}  // namespace graphene::detail
