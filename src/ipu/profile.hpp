// Execution profile collected by the Engine — the simulated analogue of
// Poplar's profiling feature (§VI-A: "For the IPU, we use Poplar's profiling
// feature to measure the required number of cycles").
//
// Compute cycles are attributed to the *category* of the compute set that
// spent them (e.g. "spmv", "reduce", "ilu_solve", "extended_precision"),
// which is exactly the granularity of the paper's Table IV breakdown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/trace.hpp"

namespace graphene::ipu {

/// Per-category aggregate of per-tile superstep timing: where the BSP
/// critical path came from and how unbalanced the tiles were. The engine
/// records one sample per compute superstep (maxCycles matches the
/// category's Profile::computeCycles entry by construction).
struct SuperstepStats {
  std::size_t supersteps = 0;
  double maxCycles = 0;   // summed superstep durations (the critical path)
  double meanCycles = 0;  // summed per-superstep mean over active tiles
  double minCycles = 0;   // summed per-superstep min over active tiles

  /// Worst single superstep seen and the tile that set its critical path.
  double worstCycles = 0;
  std::size_t worstStragglerTile = SIZE_MAX;
  std::size_t worstSuperstep = SIZE_MAX;

  /// BSP imbalance: critical path over mean tile time (1.0 = perfectly
  /// balanced; the straggler's slack is (imbalance - 1) of every superstep).
  double imbalance() const {
    return meanCycles > 0 ? maxCycles / meanCycles : 1.0;
  }

  void record(std::size_t superstep, double min, double mean, double max,
              std::size_t stragglerTile) {
    supersteps += 1;
    maxCycles += max;
    meanCycles += mean;
    minCycles += min;
    if (max > worstCycles) {
      worstCycles = max;
      worstStragglerTile = stragglerTile;
      worstSuperstep = superstep;
    }
  }

  SuperstepStats& operator+=(const SuperstepStats& o) {
    supersteps += o.supersteps;
    maxCycles += o.maxCycles;
    meanCycles += o.meanCycles;
    minCycles += o.minCycles;
    if (o.worstCycles > worstCycles) {
      worstCycles = o.worstCycles;
      worstStragglerTile = o.worstStragglerTile;
      worstSuperstep = o.worstSuperstep;
    }
    return *this;
  }

  bool operator==(const SuperstepStats& o) const {
    return supersteps == o.supersteps && maxCycles == o.maxCycles &&
           meanCycles == o.meanCycles && minCycles == o.minCycles &&
           worstCycles == o.worstCycles &&
           worstStragglerTile == o.worstStragglerTile &&
           worstSuperstep == o.worstSuperstep;
  }
};

/// One injected fault or recovery action, recorded in execution order. The
/// engine's fault-injection hooks append hardware-level events ("bitflip",
/// "stuck-zero", "exchange-drop", "exchange-corrupt", "stall"); the solver
/// layer appends its recovery actions ("recovery:restart",
/// "recovery:rollback") so a log reads as a complete fault/repair timeline.
struct FaultEvent {
  std::string kind;
  std::size_t superstep = 0;  // compute- or exchange-superstep index
  std::string target;         // tensor name, or "tile N" for stalls
  std::size_t element = 0;    // flat element index (bitflip / stuck-zero)
  int bit = -1;               // flipped bit, -1 when not applicable
  double cycles = 0;          // extra cycles charged (stalls)
  std::string detail;

  bool operator==(const FaultEvent& o) const {
    return kind == o.kind && superstep == o.superstep && target == o.target &&
           element == o.element && bit == o.bit && cycles == o.cycles &&
           detail == o.detail;
  }
};

struct Profile {
  /// Cycles per compute-set category (superstep durations, i.e. max over
  /// tiles, summed over executions).
  std::map<std::string, double> computeCycles;

  /// Cycles spent in exchange supersteps (incl. their sync).
  double exchangeCycles = 0;

  /// Two-level split of exchangeCycles (sync excluded): on-chip fabric
  /// serialisation vs IPU-Link transfers. Both are zero-sync shares, so
  /// exchangeIntraCycles + exchangeInterCycles <= exchangeCycles.
  double exchangeIntraCycles = 0;
  double exchangeInterCycles = 0;

  /// Cycles spent in compute-superstep BSP syncs.
  double syncCycles = 0;

  std::size_t computeSupersteps = 0;
  std::size_t exchangeSupersteps = 0;
  std::size_t exchangeInstructions = 0;
  std::size_t exchangedBytes = 0;

  /// Bytes crossing IPU-Links (counted once per destination IPU) and link
  /// transfers charged (after halo aggregation). Zero on a single chip.
  std::size_t interIpuBytes = 0;
  std::size_t interIpuMessages = 0;

  /// Vertices run across all compute supersteps (simulator throughput
  /// statistics; no hardware analogue).
  std::size_t verticesExecuted = 0;

  /// Structured fault log: every injected fault and every solver-level
  /// recovery action, in execution order (empty when no plan is attached).
  std::vector<FaultEvent> faultEvents;

  /// Per-superstep tile-timing aggregates, one entry per compute-set
  /// category (same keys as computeCycles): min/mean/max tile cycles and
  /// the worst straggler tile. This is the aggregate view of what a
  /// TraceSink records per superstep.
  std::map<std::string, SuperstepStats> superstepStats;

  /// Named counters and gauges ticked by the engine, codelets and solvers
  /// (e.g. "spmv.flops", "halo.bytes", "cg.restarts").
  support::MetricsRegistry metrics;

  double totalComputeCycles() const {
    double s = 0;
    for (const auto& [k, v] : computeCycles) s += v;
    return s;
  }

  double totalCycles() const {
    return totalComputeCycles() + exchangeCycles + syncCycles;
  }

  void clear() { *this = Profile{}; }

  Profile& operator+=(const Profile& o) {
    for (const auto& [k, v] : o.computeCycles) computeCycles[k] += v;
    exchangeCycles += o.exchangeCycles;
    exchangeIntraCycles += o.exchangeIntraCycles;
    exchangeInterCycles += o.exchangeInterCycles;
    syncCycles += o.syncCycles;
    computeSupersteps += o.computeSupersteps;
    exchangeSupersteps += o.exchangeSupersteps;
    exchangeInstructions += o.exchangeInstructions;
    exchangedBytes += o.exchangedBytes;
    interIpuBytes += o.interIpuBytes;
    interIpuMessages += o.interIpuMessages;
    verticesExecuted += o.verticesExecuted;
    faultEvents.insert(faultEvents.end(), o.faultEvents.begin(),
                       o.faultEvents.end());
    for (const auto& [k, v] : o.superstepStats) superstepStats[k] += v;
    metrics += o.metrics;
    return *this;
  }
};

}  // namespace graphene::ipu
