// Interpreter for traced CodeDSL codelets.
//
// Executes the statement IR against a vertex's tensor slices with genuine
// arithmetic (float32 / SoftDouble / double-word), while accumulating worker
// cycles under the IPU cost model — including the two-pipeline dual issue
// (max(fp, mem) per statement) and the iputhreading worker model for ParFor.
//
// Codelets are compiled once (flatten the shared_ptr statement tree into the
// FlatCodelet bytecode of codedsl_ir.hpp, and lower eligible counted loops to
// span-based bulk kernels) and the compiled form is executed on every vertex
// run. The bulk kernels are exact: same results bit-for-bit, same cycle
// charges, with a generic fallback for anything they cannot prove safe.
#pragma once

#include <memory>
#include <string>

#include "dsl/codedsl_ir.hpp"
#include "graph/codelet.hpp"
#include "ipu/cost_model.hpp"

namespace graphene::dsl {

/// A codelet lowered for repeated execution: the flat IR plus compiled loop
/// kernels, bound to the cost model and worker count it was priced under.
/// Immutable after compilation — safe to run from multiple host threads
/// concurrently (each run keeps its state on its own stack).
class CompiledCodelet;
using CompiledCodeletPtr = std::shared_ptr<const CompiledCodelet>;

/// Compiles a traced codelet for execution under `cost` with `numWorkers`
/// workers per tile.
CompiledCodeletPtr compileCodelet(const CodeletIR& ir,
                                  const ipu::CostModel& cost,
                                  std::size_t numWorkers);

/// Executes a compiled codelet against `ctx`; returns the modelled cost.
graph::VertexCost runCompiled(const CompiledCodelet& codelet,
                              graph::VertexContext& ctx);

/// Convenience: compiles `ir` once and wraps it as a graph::Codelet whose
/// run function executes the compiled form (the per-vertex fast path every
/// DSL codelet registration uses).
graph::Codelet makeCodelet(std::string name, CodeletIR ir,
                           const ipu::CostModel& cost, std::size_t numWorkers);

/// Executes `ir` against `ctx` (compiles on the fly); returns the modelled
/// vertex cost. Retained for tests and one-shot callers — hot paths should
/// compile once with compileCodelet and reuse the result.
graph::VertexCost interpretCodelet(const CodeletIR& ir,
                                   const ipu::CostModel& cost,
                                   std::size_t numWorkers,
                                   graph::VertexContext& ctx);

/// Globally enables/disables the compiled loop fast paths (bulk span
/// kernels). With fast paths off every loop runs the generic statement walk.
/// Results and cycle charges are identical either way — the switch exists so
/// tests can assert exactly that, and to debug miscompiles. Also settable via
/// the environment: GRAPHENE_NO_FASTPATH=1 disables them at startup.
void setCodeletFastPaths(bool enabled);
bool codeletFastPathsEnabled();

/// Enables the cycle-polynomial cross-check: codelets with a static cost
/// additionally run the fully charged per-op walk and assert that the
/// polynomial matches it exactly. Slow — for tests and debugging only. Also
/// settable via the environment: GRAPHENE_VERIFY_CYCLES=1.
void setCodeletCycleVerification(bool enabled);
bool codeletCycleVerificationEnabled();

/// Evaluates a binary operation on dynamically typed scalars with numeric
/// promotion. Exposed for unit tests.
Scalar evalBinaryScalar(BinOp op, const Scalar& lhs, const Scalar& rhs);

/// Evaluates a unary operation. Exposed for unit tests.
Scalar evalUnaryScalar(UnOp op, const Scalar& operand);

}  // namespace graphene::dsl
