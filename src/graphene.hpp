// Umbrella header: the framework's public surface in one include.
//
//   #include "graphene.hpp"
//
//   graphene::solver::SolveSession session;
//   session.load(graphene::matrix::poisson3d7(24, 24, 24))
//          .configure(R"({"type": "cg", "tolerance": 1e-6})");
//   auto result = session.solve(rhs);
//
// Layered use (own Context/Engine, custom codelets) remains available
// through the individual headers this one pulls in.
#pragma once

#include "dsl/tensor.hpp"          // TensorDSL + CodeDSL symbolic execution
#include "graph/engine.hpp"        // simulated-IPU execution + profiling
#include "ipu/fault.hpp"           // deterministic fault injection
#include "matrix/generators.hpp"   // model problems (Poisson stencils, ...)
#include "partition/partition.hpp" // row → tile partitioning
#include "solver/service.hpp"      // concurrent serving front-end + plan cache
#include "solver/session.hpp"      // the one-stop SolveSession facade
#include "solver/solvers.hpp"      // solver suite + JSON factory
#include "support/trace.hpp"       // execution tracing + metrics
