// The Engine: loads a Graph, executes Programs on the simulated IPU, and
// collects the cycle profile.
//
// Functional semantics are exact (codelets run real arithmetic on the typed
// tensor storage); timing comes from the cost model: compute supersteps cost
// the slowest tile (BSP), exchange supersteps are priced by the fabric model.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/program.hpp"
#include "graph/storage.hpp"
#include "ipu/fault.hpp"
#include "ipu/profile.hpp"

namespace graphene::graph {

class Engine {
 public:
  explicit Engine(Graph& graph);

  Graph& graph() { return graph_; }
  const ipu::IpuTarget& target() const { return graph_.target(); }

  /// Executes a program tree to completion.
  void run(const ProgramPtr& program);

  /// Host→device write of a whole tensor, in flat element order (the
  /// concatenation of per-tile regions).
  template <typename T>
  void writeTensor(TensorId id, std::span<const T> values) {
    auto dst = storageFor(id).as<T>();
    GRAPHENE_CHECK(values.size() == dst.size(), "write size mismatch on '",
                   graph_.tensor(id).name, "': ", values.size(), " vs ",
                   dst.size());
    std::copy(values.begin(), values.end(), dst.begin());
  }

  /// Device→host read of a whole tensor in flat element order.
  template <typename T>
  std::vector<T> readTensor(TensorId id) {
    auto src = storageFor(id).as<T>();
    return std::vector<T>(src.begin(), src.end());
  }

  /// Reads element 0 of a (replicated) scalar tensor.
  Scalar readScalar(TensorId id);

  /// Like readScalar, but throws NumericalError when the value is not finite
  /// — host convergence callbacks use it to surface NaN/Inf residuals as a
  /// typed error instead of recording garbage.
  Scalar readScalarFinite(TensorId id);

  /// Writes a scalar value into every replica of a replicated scalar tensor
  /// (or element 0 of a plain tensor).
  void writeScalar(TensorId id, const Scalar& value);

  /// Dynamically typed element access (host-side convenience).
  Scalar loadElement(TensorId id, std::size_t flatIndex);
  void storeElement(TensorId id, std::size_t flatIndex, const Scalar& value);

  TensorStorage& storageFor(TensorId id);

  const ipu::Profile& profile() const { return profile_; }
  ipu::Profile& profile() { return profile_; }

  /// Attaches a fault-injection plan (non-owning; nullptr detaches). With no
  /// plan attached every hook is a single null-pointer test, so execution is
  /// bit-identical to an engine without the fault framework.
  void setFaultPlan(ipu::FaultPlan* plan) { faultPlan_ = plan; }
  ipu::FaultPlan* faultPlan() const { return faultPlan_; }

  /// Simulated wall-clock seconds for everything run so far.
  double elapsedSeconds() const {
    return target().secondsFromCycles(profile_.totalCycles());
  }

 private:
  void runExecute(ComputeSetId cs);
  void runCopy(const std::vector<CopySegment>& segments);
  void syncStorage();

  Graph& graph_;
  std::vector<TensorStorage> storage_;
  ipu::Profile profile_;
  ipu::FaultPlan* faultPlan_ = nullptr;
};

}  // namespace graphene::graph
