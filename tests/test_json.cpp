#include "support/json.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace gj = graphene::json;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(gj::parse("null").isNull());
  EXPECT_EQ(gj::parse("true").asBool(), true);
  EXPECT_EQ(gj::parse("false").asBool(), false);
  EXPECT_DOUBLE_EQ(gj::parse("3.5").asNumber(), 3.5);
  EXPECT_DOUBLE_EQ(gj::parse("-0.25e2").asNumber(), -25.0);
  EXPECT_EQ(gj::parse("42").asInt(), 42);
  EXPECT_EQ(gj::parse("\"hello\"").asString(), "hello");
}

TEST(Json, ParsesNestedStructures) {
  auto v = gj::parse(R"({
    "solver": {
      "type": "bicgstab",
      "maxIterations": 100,
      "tolerance": 1e-9,
      "preconditioner": {"type": "ilu", "fill": 0}
    },
    "tags": ["sparse", "ipu"]
  })");
  EXPECT_EQ(v.at("solver").at("type").asString(), "bicgstab");
  EXPECT_EQ(v.at("solver").at("maxIterations").asInt(), 100);
  EXPECT_DOUBLE_EQ(v.at("solver").at("tolerance").asNumber(), 1e-9);
  EXPECT_EQ(v.at("solver").at("preconditioner").at("fill").asInt(), 0);
  ASSERT_EQ(v.at("tags").asArray().size(), 2u);
  EXPECT_EQ(v.at("tags").asArray()[1].asString(), "ipu");
}

TEST(Json, StringEscapes) {
  auto v = gj::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.asString(), "a\"b\\c\nd\teA");
}

TEST(Json, UnicodeEscapesToUtf8) {
  EXPECT_EQ(gj::parse(R"("é")").asString(), "\xC3\xA9");    // é
  EXPECT_EQ(gj::parse(R"("€")").asString(), "\xE2\x82\xAC");  // €
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(gj::parse(""), graphene::ParseError);
  EXPECT_THROW(gj::parse("{"), graphene::ParseError);
  EXPECT_THROW(gj::parse("[1,]"), graphene::ParseError);
  EXPECT_THROW(gj::parse("{\"a\":1,}"), graphene::ParseError);
  EXPECT_THROW(gj::parse("nul"), graphene::ParseError);
  EXPECT_THROW(gj::parse("1 2"), graphene::ParseError);
  EXPECT_THROW(gj::parse("\"unterminated"), graphene::ParseError);
  EXPECT_THROW(gj::parse("\"bad\\q\""), graphene::ParseError);
  EXPECT_THROW(gj::parse("--3"), graphene::ParseError);
}

TEST(Json, TypeMismatchThrows) {
  auto v = gj::parse("{\"a\": 1}");
  EXPECT_THROW(v.at("a").asString(), graphene::Error);
  EXPECT_THROW(v.at("missing"), graphene::Error);
  EXPECT_THROW(gj::parse("1.5").asInt(), graphene::Error);
}

TEST(Json, GetOrDefaults) {
  auto v = gj::parse("{\"present\": 7}");
  EXPECT_EQ(v.getOr("present", 0), 7);
  EXPECT_EQ(v.getOr("absent", 3), 3);
  EXPECT_EQ(v.getOr("absent", std::string("dflt")), "dflt");
  EXPECT_TRUE(v.getOr("absent", true));
  EXPECT_DOUBLE_EQ(v.getOr("absent", 2.5), 2.5);
}

TEST(Json, RoundTripDump) {
  const std::string doc =
      R"({"arr":[1,2.5,"x"],"nested":{"b":true,"n":null},"z":-3})";
  auto v = gj::parse(doc);
  auto v2 = gj::parse(v.dump());
  EXPECT_TRUE(v == v2);
  // Pretty printing also round-trips.
  auto v3 = gj::parse(v.dump(2));
  EXPECT_TRUE(v == v3);
}

TEST(Json, BuildProgrammatically) {
  gj::Object obj;
  obj["type"] = gj::Value("mpir");
  obj["iterations"] = gj::Value(10);
  gj::Array inner;
  inner.push_back(gj::Value("gauss-seidel"));
  obj["chain"] = gj::Value(std::move(inner));
  gj::Value v{std::move(obj)};
  auto parsed = gj::parse(v.dump());
  EXPECT_EQ(parsed.at("type").asString(), "mpir");
  EXPECT_EQ(parsed.at("iterations").asInt(), 10);
  EXPECT_EQ(parsed.at("chain").asArray()[0].asString(), "gauss-seidel");
}
