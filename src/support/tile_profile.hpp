// Tile-level profiling — the spatial lens on the simulated IPU.
//
// The aggregate Profile (cycles per category) and the TraceSink timeline
// answer "how many" and "when", but the paper's performance story is
// *spatial*: solver speed is set by the straggler tile, the 612 kB SRAM
// budget per tile gates what fits, and the §IV halo reordering exists to
// reshape the tile-to-tile exchange pattern. A TileProfile records, when
// attached to an Engine:
//
//   categories   per compute-set category × tile: busy cycles (tile-visible
//                superstep time), worker-busy cycles (issue slots actually
//                used across the 6 worker threads), barrier-idle cycles
//                (time spent waiting for the superstep's straggler), and
//                critical-path cycles (each superstep's duration attributed
//                to the tile that set it — the per-category tile sums
//                reproduce Profile::computeCycles exactly)
//   traffic      a tile×tile matrix of exchange payload bytes and messages,
//                fed from ipu::priceExchange. Broadcast payload is split
//                integer-exactly over the destinations, so the matrix total
//                equals Profile::exchangedBytes
//   sram         per-tile SRAM occupancy and high-water from the graph's
//                memory ledger, broken down by tensor
//
// Like the trace layer it is pay-for-what-you-use (every engine emission
// site is one null-pointer test; nothing here runs when detached) and
// deterministic: all recording happens in the engine's serial reduction
// passes, so reports are bit-identical at every host thread count.
//
// Analysis passes derive load-imbalance histograms, top-K stragglers with
// the categories that made them slow, a traffic-locality score (the metric
// the halo-reordering A/B moves), and a roofline-style compute-vs-exchange
// classification. Exporters serialise a report as JSON, as a single-file
// HTML page with inline heatmaps, and as text tables; diffTileProfiles
// compares two reports (the `graphene-prof` CLI fronts all of this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/table.hpp"

namespace graphene::support {

/// Tile×tile exchange traffic, accumulated over every exchange superstep.
///
/// Attribution follows the fabric cost model: a broadcast serialises its
/// payload once on the send side, so the payload bytes of a transfer are
/// split across its remote destinations (remainder bytes to the first
/// ones — integer-exact, no fractional bytes). Row sums are therefore the
/// bytes each tile pushed into the fabric, column sums the share each tile
/// pulled out, and the grand total equals Profile::exchangedBytes. A
/// `message` is one payload delivery to one destination tile; one `send
/// instruction` is charged per transfer regardless of fan-out (what the
/// exchange model prices per-instruction overhead on).
class TileTrafficMatrix {
 public:
  TileTrafficMatrix() = default;
  explicit TileTrafficMatrix(std::size_t numTiles) { init(numTiles); }

  void init(std::size_t numTiles);
  std::size_t numTiles() const { return numTiles_; }

  /// Records one transfer of `bytes` from `srcTile` to `dstTiles`.
  /// Destinations equal to the source are tile-local copies and ignored; a
  /// transfer with no remote destination records nothing.
  void recordTransfer(std::size_t srcTile,
                      const std::vector<std::size_t>& dstTiles,
                      std::size_t bytes);

  std::uint64_t bytes(std::size_t src, std::size_t dst) const {
    return bytes_[src * numTiles_ + dst];
  }
  std::uint64_t messages(std::size_t src, std::size_t dst) const {
    return messages_[src * numTiles_ + dst];
  }

  /// Payload bytes sent by / received by one tile (row / column sums).
  std::uint64_t rowSum(std::size_t src) const;
  std::uint64_t colSum(std::size_t dst) const;

  std::uint64_t totalBytes() const { return totalBytes_; }
  std::uint64_t totalMessages() const { return totalMessages_; }
  std::uint64_t sendInstructions() const { return sendInstructions_; }

  bool empty() const { return totalMessages_ == 0; }

  // Flat row-major planes (exporters; kept in sync by recordTransfer).
  const std::vector<std::uint64_t>& bytesPlane() const { return bytes_; }
  const std::vector<std::uint64_t>& messagesPlane() const { return messages_; }
  std::vector<std::uint64_t>& mutableBytesPlane() { return bytes_; }
  std::vector<std::uint64_t>& mutableMessagesPlane() { return messages_; }
  void setTotals(std::uint64_t bytes, std::uint64_t messages,
                 std::uint64_t sends) {
    totalBytes_ = bytes;
    totalMessages_ = messages;
    sendInstructions_ = sends;
  }

 private:
  std::size_t numTiles_ = 0;
  std::vector<std::uint64_t> bytes_;     // row-major [src][dst]
  std::vector<std::uint64_t> messages_;  // deliveries per (src, dst)
  std::uint64_t totalBytes_ = 0;
  std::uint64_t totalMessages_ = 0;
  std::uint64_t sendInstructions_ = 0;
};

/// Per-tile cycle attribution for one compute-set category.
struct TileCategoryProfile {
  std::size_t supersteps = 0;

  /// Tile-visible superstep time (max over the tile's worker clocks),
  /// summed over this category's supersteps. The imbalance heatmap.
  std::vector<double> busyCycles;

  /// Issue slots actually used across the tile's worker threads (the
  /// busy side of the worker busy/idle split; idle is
  /// workersPerTile × busyCycles − workerBusyCycles).
  std::vector<double> workerBusyCycles;

  /// Cycles spent waiting at the BSP barrier for the superstep's straggler
  /// (superstep critical path minus this tile's own time, summed).
  std::vector<double> barrierIdleCycles;

  /// Each superstep's critical path attributed to the tile that set it.
  /// Summing this plane over tiles reproduces the category's
  /// Profile::computeCycles entry exactly (same dyadic cycle values, only
  /// re-binned by straggler).
  std::vector<double> criticalCycles;
};

/// Per-tile SRAM occupancy snapshot, broken down by tensor.
struct TileSramProfile {
  std::size_t budgetBytes = 0;
  std::vector<std::size_t> usedBytes;       // ledger occupancy per tile
  std::vector<std::size_t> highWaterBytes;  // ledger high-water per tile

  struct TensorSram {
    std::string name;
    std::string dtype;
    std::vector<std::size_t> bytesPerTile;
  };
  std::vector<TensorSram> tensors;  // graph order

  std::size_t peakUsed() const;
};

/// The full tile-resolution report of one run. Filled by the Engine
/// (Engine::setTileProfile); an accumulating collector, so a SolveSession
/// keeps one across hard-fault remap attempts and the report covers the
/// whole solve.
struct TileProfile {
  /// v2 adds the pod shape (tilesPerIpu) and the IPU-Link share of the
  /// exchange phase; v1 documents load as single-chip (tilesPerIpu =
  /// numTiles) and is still accepted by tileProfileFromJson.
  static constexpr int kSchemaVersion = 2;

  std::size_t numTiles = 0;
  /// Tiles per IPU chip; numTiles / tilesPerIpu is the pod size. Equal to
  /// numTiles on a single chip (and for v1 reports).
  std::size_t tilesPerIpu = 0;
  std::size_t workersPerTile = 0;
  /// Send-port bytes one transfer instruction's overhead is worth
  /// (exchangeInstrCycles × exchangeSendBytesPerCycle) — the constant the
  /// traffic-locality score charges per message.
  double overheadBytesPerMessage = 0;
  std::string label;  // e.g. the solver chain name

  std::map<std::string, TileCategoryProfile> categories;
  TileTrafficMatrix traffic;
  TileSramProfile sram;

  double exchangeCycles = 0;
  /// IPU-Link share of exchangeCycles (0 on a single chip).
  double exchangeInterCycles = 0;
  double syncCycles = 0;
  std::size_t computeSupersteps = 0;
  std::size_t exchangeSupersteps = 0;

  /// IPU index owning a tile under this report's pod shape.
  std::size_t ipuOfTile(std::size_t tile) const {
    return tilesPerIpu > 0 ? tile / tilesPerIpu : 0;
  }
  std::size_t numIpus() const {
    return tilesPerIpu > 0 ? numTiles / tilesPerIpu : 1;
  }

  /// Sizes every per-tile structure (idempotent; re-attaching the same
  /// collector to a rebuilt engine validates the geometry instead).
  /// `tilesPerChip` = 0 means a single chip (tilesPerIpu = tiles).
  void init(std::size_t tiles, std::size_t workers, double overheadBytesPerMsg,
            std::size_t tilesPerChip = 0);

  /// The category's per-tile planes, created and sized on first use.
  TileCategoryProfile& category(const std::string& name);

  /// Sum of a category's criticalCycles plane — equals the category's
  /// Profile::computeCycles entry.
  double categoryCycles(const std::string& name) const;
  double totalComputeCycles() const;
  double totalCycles() const {
    return totalComputeCycles() + exchangeCycles + syncCycles;
  }

  /// Per-tile busy cycles summed over all categories.
  std::vector<double> busyByTile() const;
  /// Per-tile critical-path attribution summed over all categories.
  std::vector<double> criticalByTile() const;
};

// -- analyses ---------------------------------------------------------------

/// Load-imbalance statistics over the per-tile total busy cycles.
struct ImbalanceStats {
  std::size_t activeTiles = 0;  // tiles with any busy cycles
  double minCycles = 0;
  double meanCycles = 0;
  double maxCycles = 0;
  /// Critical path over mean busy time of active tiles (1.0 = balanced).
  double imbalance = 1.0;
  /// Histogram of active tiles' busy cycles over [histLow, histHigh] in
  /// equal-width buckets.
  double histLow = 0;
  double histHigh = 0;
  std::vector<std::size_t> histogram;
};

ImbalanceStats loadImbalance(const TileProfile& profile,
                             std::size_t buckets = 10);

/// One straggler tile: how much critical path it set and where it spent
/// its own time.
struct StragglerInfo {
  std::size_t tile = 0;
  double criticalCycles = 0;  // critical path this tile was charged with
  double busyCycles = 0;      // the tile's own busy time
  double workerUtilisation = 0;  // workerBusy / (workers × busy)
  /// Categories that made the tile slow, largest critical share first.
  std::vector<std::pair<std::string, double>> categories;
};

/// Top `k` tiles by critical-path attribution, descending (ties broken by
/// lower tile id — deterministic).
std::vector<StragglerInfo> topStragglers(const TileProfile& profile,
                                         std::size_t k = 8);

/// Traffic-locality score in (0, 1]: spatial locality (payload-weighted
/// 1/(1+|src−dst|) proximity) × wire efficiency (payload over payload plus
/// per-message instruction overhead priced in send-port bytes). Blockwise
/// halo reordering raises the efficiency factor by collapsing per-cell
/// sends into region broadcasts; a partitioning that keeps neighbours on
/// nearby tiles raises the spatial factor. 0 when there was no traffic.
double trafficLocalityScore(const TileProfile& profile);

/// Two-level split of the traffic matrix and the locality score under the
/// report's pod shape. Intra pairs live on one chip (spatial factor decays
/// with tile distance, as in trafficLocalityScore); inter pairs cross
/// IPU-Links (spatial factor decays with *IPU* distance — what the pod-aware
/// partitioner and halo aggregation move). Scores are 0 for an empty side.
struct TrafficLocalitySplit {
  std::uint64_t intraBytes = 0;
  std::uint64_t interBytes = 0;
  double intraScore = 0;
  double interScore = 0;
};

TrafficLocalitySplit trafficLocalitySplit(const TileProfile& profile);

/// Roofline-style classification of one category: how its critical path
/// splits between useful worker issue and the two stall ceilings.
struct CategoryClassification {
  std::string category;
  double criticalCycles = 0;
  double shareOfCompute = 0;      // of total compute critical path
  double imbalance = 1.0;         // critical path / mean busy of active tiles
  double workerUtilisation = 0;   // workerBusy / (workers × busy)
  /// "compute-bound" (workers busy), "worker-idle" (serial codelets /
  /// latency), or "imbalance-bound" (straggler-dominated).
  std::string klass;
};

std::vector<CategoryClassification> classifyCategories(
    const TileProfile& profile);

/// Whole-run verdict: "exchange-bound" when the exchange phase outweighs
/// compute, else "compute-bound".
std::string runClassification(const TileProfile& profile);

// -- comparison (A/B runs) --------------------------------------------------

/// Structural comparison of two reports (A = baseline, B = candidate).
struct TileProfileDiff {
  double totalCyclesA = 0, totalCyclesB = 0;
  double computeCyclesA = 0, computeCyclesB = 0;
  double exchangeCyclesA = 0, exchangeCyclesB = 0;
  std::uint64_t trafficBytesA = 0, trafficBytesB = 0;
  std::uint64_t interIpuBytesA = 0, interIpuBytesB = 0;
  std::uint64_t messagesA = 0, messagesB = 0;
  double localityA = 0, localityB = 0;
  double imbalanceA = 1.0, imbalanceB = 1.0;

  struct CategoryDelta {
    std::string category;
    double cyclesA = 0, cyclesB = 0;
  };
  std::vector<CategoryDelta> categories;  // union of both, name order

  double cyclesRatio() const {
    return totalCyclesA > 0 ? totalCyclesB / totalCyclesA : 1.0;
  }
  double localityRatio() const {
    return localityA > 0 ? localityB / localityA : 1.0;
  }
  double interIpuBytesRatio() const {
    return interIpuBytesA > 0 ? static_cast<double>(interIpuBytesB) /
                                    static_cast<double>(interIpuBytesA)
                              : 1.0;
  }
};

TileProfileDiff diffTileProfiles(const TileProfile& a, const TileProfile& b);

/// Regression gate for the diff: fails when B's total cycles regress past
/// `maxCyclesRegressFrac` (0 = any regression fails; < 0 disables the
/// check), B's locality falls below `minLocalityRatio` × A's (< 0
/// disables), or B's inter-IPU bytes regress past
/// `maxInterBytesRegressFrac` (< 0 disables). Returns a human-readable
/// verdict in `*why` when failing.
bool diffWithinThresholds(const TileProfileDiff& diff,
                          double maxCyclesRegressFrac,
                          double minLocalityRatio, std::string* why = nullptr,
                          double maxInterBytesRegressFrac = -1.0);

// -- exporters --------------------------------------------------------------

/// Serialises a report (deterministic key order; numbers round-trip).
json::Value tileProfileToJson(const TileProfile& profile);
/// Inverse of tileProfileToJson; validates geometry and schema version.
TileProfile tileProfileFromJson(const json::Value& doc);

/// Single-file HTML report: metadata, category table, straggler table, and
/// inline heatmaps for the tile grid (busy cycles, critical path, SRAM) and
/// the tile×tile traffic matrix. Self-contained — no scripts, no external
/// assets.
std::string tileProfileToHtml(const TileProfile& profile);

/// Per-category cycle/imbalance/utilisation breakdown.
TextTable tileProfileSummaryTable(const TileProfile& profile);
/// Top-K straggler tiles with their dominant categories.
TextTable tileStragglerTable(const TileProfile& profile, std::size_t k = 8);
/// Side-by-side A/B comparison of two reports.
TextTable tileProfileDiffTable(const TileProfileDiff& diff);

}  // namespace graphene::support
