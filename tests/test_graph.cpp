// Unit tests for the graph substrate: tensors, mappings, storage, programs,
// engine execution and profiling.
#include <gtest/gtest.h>

#include "graph/engine.hpp"
#include "graph/graph.hpp"
#include "support/error.hpp"

using namespace graphene;
using namespace graphene::graph;

namespace {

TensorInfo makeInfo(const std::string& name, ipu::DType t,
                    TileMapping mapping) {
  TensorInfo info;
  info.name = name;
  info.dtype = t;
  info.mapping = std::move(mapping);
  return info;
}

/// A codelet writing constant `value` to every element of arg 0.
Codelet fillCodelet(float value) {
  return Codelet{"fill", [value](VertexContext& ctx) {
                   for (std::size_t i = 0; i < ctx.argSize(0); ++i) {
                     ctx.store(0, i, Scalar(value));
                   }
                   return VertexCost{static_cast<double>(ctx.argSize(0)) * 6,
                                     false};
                 }};
}

}  // namespace

TEST(TileMappingTest, LinearSplitsEvenly) {
  auto m = TileMapping::linear(10, 4);
  EXPECT_EQ(m.sizePerTile, (std::vector<std::size_t>{3, 3, 2, 2}));
  EXPECT_EQ(m.totalElements(), 10u);
}

TEST(TileMappingTest, ReplicatedAndOnTile) {
  auto r = TileMapping::replicated(3);
  EXPECT_EQ(r.sizePerTile, (std::vector<std::size_t>{1, 1, 1}));
  auto o = TileMapping::onTile(7, 1, 3);
  EXPECT_EQ(o.sizePerTile, (std::vector<std::size_t>{0, 7, 0}));
}

TEST(GraphTest, TensorAllocationChargesLedger) {
  Graph g(ipu::IpuTarget::testTarget(2));
  g.addTensor(makeInfo("v", ipu::DType::Float32, TileMapping::linear(100, 2)));
  EXPECT_EQ(g.ledger().used(0), 50u * 4);
  EXPECT_EQ(g.ledger().used(1), 50u * 4);
  g.addTensor(makeInfo("d", ipu::DType::DoubleWord, TileMapping::linear(10, 2)));
  EXPECT_EQ(g.ledger().used(0), 200u + 5 * 8);
}

TEST(GraphTest, RejectsWrongTileCount) {
  Graph g(ipu::IpuTarget::testTarget(2));
  EXPECT_THROW(
      g.addTensor(makeInfo("v", ipu::DType::Float32, TileMapping::linear(8, 3))),
      Error);
}

TEST(GraphTest, VertexValidation) {
  Graph g(ipu::IpuTarget::testTarget(2));
  TensorId v = g.addTensor(
      makeInfo("v", ipu::DType::Float32, TileMapping::linear(10, 2)));
  CodeletId c = g.addCodelet(fillCodelet(1.0f));
  ComputeSetId cs = g.addComputeSet("test");
  // Cross-tile slice access is forbidden (tile-local memory).
  Vertex bad;
  bad.codelet = c;
  bad.tile = 0;
  bad.args.push_back(TensorSlice{v, 1, 0, 5});
  EXPECT_THROW(g.addVertex(cs, bad), Error);
  // Slice overrun is forbidden.
  Vertex overrun;
  overrun.codelet = c;
  overrun.tile = 0;
  overrun.args.push_back(TensorSlice{v, 0, 3, 5});
  EXPECT_THROW(g.addVertex(cs, overrun), Error);
  // Valid vertex is accepted.
  Vertex ok;
  ok.codelet = c;
  ok.tile = 0;
  ok.args.push_back(TensorSlice{v, 0, 0, 5});
  g.addVertex(cs, ok);
  EXPECT_EQ(g.computeSet(cs).vertices.size(), 1u);
}

TEST(EngineTest, ExecutesComputeSetAndTracksProfile) {
  Graph g(ipu::IpuTarget::testTarget(2));
  TensorId v = g.addTensor(
      makeInfo("v", ipu::DType::Float32, TileMapping::linear(10, 2)));
  CodeletId c = g.addCodelet(fillCodelet(2.5f));
  ComputeSetId cs = g.addComputeSet("fill");
  for (std::size_t tile = 0; tile < 2; ++tile) {
    Vertex vx;
    vx.codelet = c;
    vx.tile = tile;
    vx.args.push_back(TensorSlice{v, tile, 0, 5});
    g.addVertex(cs, vx);
  }
  Engine engine(g);
  engine.run(Program::execute(cs));
  for (float x : engine.readTensor<float>(v)) EXPECT_FLOAT_EQ(x, 2.5f);
  EXPECT_EQ(engine.profile().computeSupersteps, 1u);
  EXPECT_GT(engine.profile().computeCycles.at("fill"), 0.0);
  EXPECT_GT(engine.profile().syncCycles, 0.0);
}

TEST(EngineTest, RepeatRunsBodyNTimes) {
  Graph g(ipu::IpuTarget::testTarget(1));
  TensorId v = g.addTensor(
      makeInfo("v", ipu::DType::Int32, TileMapping::linear(1, 1)));
  CodeletId c = g.addCodelet(Codelet{"inc", [](VertexContext& ctx) {
                                       ctx.store(0, 0,
                                                 Scalar(ctx.load(0, 0).asInt() +
                                                        1));
                                       return VertexCost{6, false};
                                     }});
  ComputeSetId cs = g.addComputeSet("inc");
  Vertex vx;
  vx.codelet = c;
  vx.tile = 0;
  vx.args.push_back(TensorSlice{v, 0, 0, 1});
  g.addVertex(cs, vx);

  Engine engine(g);
  engine.run(Program::repeat(7, Program::execute(cs)));
  EXPECT_EQ(engine.readTensor<std::int32_t>(v)[0], 7);
  EXPECT_EQ(engine.profile().computeSupersteps, 7u);
}

TEST(EngineTest, CopyMovesDataAndPricesExchange) {
  Graph g(ipu::IpuTarget::testTarget(4));
  TensorId src = g.addTensor(
      makeInfo("src", ipu::DType::Float32, TileMapping::onTile(8, 0, 4)));
  TensorId dst = g.addTensor(
      makeInfo("dst", ipu::DType::Float32, TileMapping::linear(8, 4)));
  Engine engine(g);
  std::vector<float> data = {1, 2, 3, 4, 5, 6, 7, 8};
  engine.writeTensor<float>(src, data);

  // Scatter tile0's 8 elements to 4 tiles of 2.
  std::vector<CopySegment> segs;
  for (std::size_t t = 0; t < 4; ++t) {
    CopySegment s;
    s.src = src;
    s.srcTile = 0;
    s.srcBegin = 2 * t;
    s.dst = dst;
    s.dsts.push_back({t, 0});
    s.count = 2;
    segs.push_back(s);
  }
  engine.run(Program::copy(std::move(segs)));
  EXPECT_EQ(engine.readTensor<float>(dst), data);
  EXPECT_EQ(engine.profile().exchangeSupersteps, 1u);
  // 3 remote transfers (tile0->tile0 is local).
  EXPECT_EQ(engine.profile().exchangeInstructions, 3u);
  EXPECT_EQ(engine.profile().exchangedBytes, 3u * 2 * 4);
}

TEST(EngineTest, IfBranchesOnCondTensor) {
  Graph g(ipu::IpuTarget::testTarget(1));
  TensorId cond = g.addTensor(
      makeInfo("cond", ipu::DType::Bool, TileMapping::linear(1, 1)));
  TensorId out = g.addTensor(
      makeInfo("out", ipu::DType::Float32, TileMapping::linear(1, 1)));
  auto setTo = [&](float v) {
    CodeletId c = g.addCodelet(fillCodelet(v));
    ComputeSetId cs = g.addComputeSet("set");
    Vertex vx;
    vx.codelet = c;
    vx.tile = 0;
    vx.args.push_back(TensorSlice{out, 0, 0, 1});
    g.addVertex(cs, vx);
    return Program::execute(cs);
  };
  auto prog = Program::branch(Program::sequence(), cond, setTo(1.0f),
                              setTo(-1.0f));
  {
    Engine engine(g);
    engine.writeScalar(cond, Scalar(true));
    engine.run(prog);
    EXPECT_FLOAT_EQ(engine.readScalar(out).asFloat(), 1.0f);
  }
  {
    Engine engine(g);
    engine.writeScalar(cond, Scalar(false));
    engine.run(prog);
    EXPECT_FLOAT_EQ(engine.readScalar(out).asFloat(), -1.0f);
  }
}

TEST(EngineTest, WholeTileVertexOccupiesAllWorkers) {
  Graph g(ipu::IpuTarget::testTarget(1));
  TensorId v = g.addTensor(
      makeInfo("v", ipu::DType::Float32, TileMapping::linear(6, 1)));
  // Six parallel single-worker vertices...
  CodeletId cheap = g.addCodelet(Codelet{
      "w", [](VertexContext&) { return VertexCost{600, false}; }});
  ComputeSetId csParallel = g.addComputeSet("parallel");
  for (int i = 0; i < 6; ++i) {
    Vertex vx;
    vx.codelet = cheap;
    vx.tile = 0;
    vx.args.push_back(TensorSlice{v, 0, 0, 6});
    g.addVertex(csParallel, vx);
  }
  // ...vs one whole-tile vertex with the same worker cycles.
  CodeletId whole = g.addCodelet(Codelet{
      "whole", [](VertexContext&) { return VertexCost{600, true}; }});
  ComputeSetId csWhole = g.addComputeSet("whole");
  Vertex vx;
  vx.codelet = whole;
  vx.tile = 0;
  vx.args.push_back(TensorSlice{v, 0, 0, 6});
  g.addVertex(csWhole, vx);

  Engine engine(g);
  engine.run(Program::execute(csParallel));
  double parallelCycles = engine.profile().computeCycles.at("parallel");
  engine.run(Program::execute(csWhole));
  double wholeCycles = engine.profile().computeCycles.at("whole");
  // Six 600-cycle vertices across six workers ≈ 600 cycles; the whole-tile
  // vertex also ≈ 600 (it IS the six workers) — both near 600.
  EXPECT_NEAR(parallelCycles, 600.0, 50.0);
  EXPECT_NEAR(wholeCycles, 600.0, 50.0);
}

TEST(StorageTest, TypedAccessAndCasts) {
  TensorInfo info =
      makeInfo("x", ipu::DType::DoubleWord, TileMapping::linear(4, 2));
  TensorStorage s(info);
  s.store(0, Scalar(1.5f));  // float → double-word cast on store
  EXPECT_EQ(s.load(0).type(), ipu::DType::DoubleWord);
  EXPECT_DOUBLE_EQ(s.load(0).toHostDouble(), 1.5);
  EXPECT_EQ(s.tileOffset(1), 2u);
  EXPECT_EQ(s.tileSize(1), 2u);
}

TEST(StorageTest, CopyBetweenStoragesRequiresSameDtype) {
  TensorStorage a(makeInfo("a", ipu::DType::Float32, TileMapping::linear(4, 1)));
  TensorStorage b(makeInfo("b", ipu::DType::Float32, TileMapping::linear(4, 1)));
  TensorStorage c(makeInfo("c", ipu::DType::Int32, TileMapping::linear(4, 1)));
  a.store(1, Scalar(3.0f));
  b.copyFrom(a, 0, 0, 4);
  EXPECT_FLOAT_EQ(b.load(1).asFloat(), 3.0f);
  EXPECT_THROW(c.copyFrom(a, 0, 0, 4), Error);
}

TEST(ProgramTest, StepCountCountsTree) {
  auto leaf = Program::execute(0);
  auto seq = Program::sequence();
  seq->children.push_back(leaf);
  seq->children.push_back(Program::repeat(3, Program::execute(1)));
  // sequence + execute + repeat + repeat-body = 4.
  EXPECT_EQ(seq->stepCount(), 4u);
}

#include "graph/compiler.hpp"

TEST(Compiler, AnalyzeCountsSteps) {
  auto seq = Program::sequence();
  seq->children.push_back(Program::execute(0));
  seq->children.push_back(Program::copy({}));
  seq->children.push_back(Program::repeat(2, Program::execute(1)));
  seq->children.push_back(Program::hostCall({}));
  auto stats = analyzeProgram(seq);
  EXPECT_EQ(stats.executeSteps, 2u);
  EXPECT_EQ(stats.copySteps, 1u);
  EXPECT_EQ(stats.repeatSteps, 1u);
  EXPECT_EQ(stats.hostCallSteps, 1u);
  EXPECT_EQ(stats.sequenceSteps, 1u);
}

TEST(Compiler, CoalesceMergesAdjacentCopies) {
  Graph g(ipu::IpuTarget::testTarget(2));
  TensorId a = g.addTensor([] {
    TensorInfo i;
    i.name = "a";
    i.dtype = ipu::DType::Float32;
    i.mapping = TileMapping::linear(8, 2);
    return i;
  }());
  TensorId b = g.addTensor([] {
    TensorInfo i;
    i.name = "b";
    i.dtype = ipu::DType::Float32;
    i.mapping = TileMapping::linear(8, 2);
    return i;
  }());
  auto copySeg = [&](std::size_t srcTile, std::size_t dstTile) {
    CopySegment s;
    s.src = a;
    s.srcTile = srcTile;
    s.srcBegin = 0;
    s.dst = b;
    s.dsts.push_back({dstTile, 0});
    s.count = 2;
    return s;
  };
  auto seq = Program::sequence();
  seq->children.push_back(Program::copy({copySeg(0, 1)}));
  seq->children.push_back(Program::copy({copySeg(1, 0)}));
  seq->children.push_back(Program::execute(0));
  seq->children.push_back(Program::copy({copySeg(0, 1)}));

  auto optimized = coalesceCopies(seq);
  auto stats = analyzeProgram(optimized);
  EXPECT_EQ(stats.copySteps, 2u);      // first two merged, third kept
  EXPECT_EQ(stats.copySegments, 3u);   // segments preserved
  // Original untouched.
  EXPECT_EQ(analyzeProgram(seq).copySteps, 3u);

  // Semantics preserved: run both, compare results and superstep counts.
  CodeletId c = g.addCodelet(Codelet{"nop", [](VertexContext&) {
                                       return VertexCost{6, false};
                                     }});
  ComputeSetId cs = g.addComputeSet("nop");
  Vertex vx;
  vx.codelet = c;
  vx.tile = 0;
  g.addVertex(cs, vx);
  // (compute set 0 referenced by the program is the one just added)
  std::vector<float> data = {1, 2, 3, 4, 5, 6, 7, 8};
  Engine e1(g), e2(g);
  e1.writeTensor<float>(a, data);
  e2.writeTensor<float>(a, data);
  e1.run(seq);
  e2.run(optimized);
  EXPECT_EQ(e1.readTensor<float>(b), e2.readTensor<float>(b));
  EXPECT_EQ(e1.profile().exchangeSupersteps, 3u);
  EXPECT_EQ(e2.profile().exchangeSupersteps, 2u);
  EXPECT_LT(e2.profile().exchangeCycles, e1.profile().exchangeCycles);
}

TEST(Compiler, FlattenInlinesNestedSequences) {
  auto inner = Program::sequence();
  inner->children.push_back(Program::execute(0));
  inner->children.push_back(Program::execute(1));
  auto outer = Program::sequence();
  outer->children.push_back(inner);
  outer->children.push_back(Program::execute(2));
  auto flat = flattenSequences(outer);
  EXPECT_EQ(flat->children.size(), 3u);
  for (const auto& c : flat->children) {
    EXPECT_EQ(c->kind, Program::Kind::Execute);
  }
}
