// Graph-compilation passes — the simulated analogue of the Poplar compiler's
// program optimisation (§III-A step 3: "The Poplar compiler optimizes the
// dataflow graph and execution schedule. It then generates communication
// schedules...").
//
// Two facilities:
//  - coalesceCopies: merges runs of adjacent Copy steps inside a Sequence
//    into one exchange superstep. Every merged pair saves one BSP sync and
//    lets independent transfers overlap in the fabric — this is why the DSL
//    keeping the number of program steps small (§III-C) pays off at run time.
//  - fuseSupersteps: merges runs of adjacent Execute steps inside a Sequence
//    into one ExecuteFused step. Legal because tiles only touch tile-local
//    memory between exchanges, so a tile's work for consecutive compute
//    supersteps can run back-to-back without observing another tile; each
//    member still commits its own superstep, so profiles are unchanged.
//  - flattenSequences: inlines nested bare Sequence nodes.
//  - analyzeProgram: static schedule statistics (step counts by kind,
//    transfer/byte totals), the numbers the paper's compile-time discussion
//    is about.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "graph/program.hpp"

namespace graphene::graph {

class Graph;

struct ProgramStats {
  std::size_t totalSteps = 0;
  std::size_t executeSteps = 0;
  std::size_t copySteps = 0;
  std::size_t repeatSteps = 0;
  std::size_t whileSteps = 0;
  std::size_t ifSteps = 0;
  std::size_t hostCallSteps = 0;
  std::size_t sequenceSteps = 0;
  /// ExecuteFused nodes (their member compute sets are counted into
  /// executeSteps: each still runs as its own compute superstep).
  std::size_t fusedSteps = 0;
  /// Static transfer segments and payload bytes across all Copy steps
  /// (communication-program size, §IV benefit #1). Bytes assume float32
  /// elements when tensor types are unknown to the analyzer caller.
  std::size_t copySegments = 0;
};

/// Collects static statistics over a program tree.
ProgramStats analyzeProgram(const ProgramPtr& program);

/// Returns a new program tree where adjacent Copy steps within each Sequence
/// are merged into single exchange supersteps. Safe for halo-exchange-style
/// copies whose segments target disjoint destinations; segments are
/// concatenated in order.
ProgramPtr coalesceCopies(const ProgramPtr& program);

/// Returns a new program tree where every run of >= 2 adjacent Execute steps
/// within a Sequence is replaced by one ExecuteFused step. Only plain
/// Execute steps fuse: any intervening Copy, HostCall or control-flow node
/// ends the run, and ABFT compute sets (category "abft") never fuse. The
/// engine runs each member as its own committed superstep, so Profile
/// cycle/superstep totals are exactly those of the unfused program — fusion
/// only removes host-side dispatch barriers between members.
ProgramPtr fuseSupersteps(const ProgramPtr& program, const Graph& graph);

/// Returns a new program tree with nested bare Sequences inlined into their
/// parents (smaller schedule, same semantics).
ProgramPtr flattenSequences(const ProgramPtr& program);

}  // namespace graphene::graph
