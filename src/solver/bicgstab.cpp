// Preconditioned BiCGStab (§V-C), following the paper's Fig. 4 DSL listing.
#include <cmath>

#include "solver/solvers.hpp"

namespace graphene::solver {

using dsl::Dot;
using dsl::Expression;
using dsl::Tensor;

void BiCgStabSolver::apply(DistMatrix& a, Tensor& x, Tensor& b) {
  precond_->ensureSetup(a);

  // Zero initial guess: r0 = b − A·x = b.
  x = Expression(0.0f);
  Tensor rA0 = b;  // deep copy: the shadow residual stays fixed
  Tensor rA = b;
  Tensor pA = a.makeVector(DType::Float32, "bicg_p");
  pA = Expression(0.0f);
  Tensor yA = a.makeVector(DType::Float32, "bicg_y");
  Tensor zA = a.makeVector(DType::Float32, "bicg_z");
  Tensor AyA = a.makeVector(DType::Float32, "bicg_Ay");
  AyA = Expression(0.0f);
  Tensor sA = a.makeVector(DType::Float32, "bicg_s");
  Tensor tA = a.makeVector(DType::Float32, "bicg_t");

  Tensor bNormSq = Dot(b, b);
  Tensor rA0rAold = Tensor(Expression(bNormSq));
  Tensor rA0rA = Tensor::scalar(DType::Float32, "bicg_rho");
  Tensor alpha = Tensor::scalar(DType::Float32, "bicg_alpha");
  alpha = Expression(1.0f);
  Tensor omega = Tensor::scalar(DType::Float32, "bicg_omega");
  omega = Expression(1.0f);
  Tensor beta = Tensor::scalar(DType::Float32, "bicg_beta");
  Tensor resNormSq = Tensor(Expression(bNormSq));
  Tensor iter = Tensor::scalar(DType::Int32, "bicg_iter");
  iter = Expression(0);

  const float tol2 = static_cast<float>(tolerance_ * tolerance_);
  auto histPtr = history_;
  graph::TensorId resId = resNormSq.id(), bId = bNormSq.id();

  Expression keepGoing =
      tolerance_ > 0.0
          ? Expression(iter) < static_cast<int>(maxIterations_) &&
                Expression(resNormSq) > Expression(tol2) * Expression(bNormSq)
          : Expression(iter) < static_cast<int>(maxIterations_);

  // Breakdown guards (the paper's implementation has "early exits due to
  // convergence or singularity"): once the float32 residual hits its floor,
  // the rho / omega denominators collapse to zero — Select keeps the update
  // coefficients finite and the iteration merely stagnates instead of
  // producing NaNs.
  Tensor denom = Tensor::scalar(DType::Float32, "bicg_denom");
  Tensor tt = Tensor::scalar(DType::Float32, "bicg_tt");

  dsl::While(keepGoing, [&] {
    rA0rA = Dot(rA0, rA);
    beta = dsl::Select(
        Abs(Expression(rA0rAold)) * Abs(Expression(omega)) > Expression(0.0f),
        (Expression(rA0rA) / Expression(rA0rAold)) *
            (Expression(alpha) / Expression(omega)),
        Expression(0.0f));
    pA = Expression(rA) +
         Expression(beta) * (Expression(pA) - Expression(omega) * Expression(AyA));
    precond_->apply(a, yA, pA);
    a.spmv(AyA, yA);
    denom = Dot(rA0, AyA);
    alpha = dsl::Select(Abs(Expression(denom)) > Expression(0.0f),
                        Expression(rA0rA) / Expression(denom),
                        Expression(0.0f));
    sA = Expression(rA) - Expression(alpha) * Expression(AyA);
    precond_->apply(a, zA, sA);
    a.spmv(tA, zA);
    tt = Dot(tA, tA);
    omega = dsl::Select(Expression(tt) > Expression(0.0f),
                        Dot(tA, sA) / Expression(tt), Expression(0.0f));
    x = Expression(x) + Expression(alpha) * Expression(yA) +
        Expression(omega) * Expression(zA);
    rA = Expression(sA) - Expression(omega) * Expression(tA);
    rA0rAold = Expression(rA0rA);
    iter = Expression(iter) + 1;
    resNormSq = Dot(rA, rA);
    dsl::HostCall([histPtr, resId, bId](graph::Engine& e) {
      double rr = e.readScalar(resId).toHostDouble();
      double bb = e.readScalar(bId).toHostDouble();
      histPtr->push_back(
          {histPtr->size() + 1, std::sqrt(std::abs(rr) / std::max(bb, 1e-300))});
    });
    if (monitorEvery_ > 0) emitTrueResidualMonitor(a, x, b);
  });
}

void BiCgStabSolver::emitTrueResidualMonitor(DistMatrix& a, Tensor& x,
                                             Tensor& b) {
  // Lazily created measurement state (double-word).
  if (!monX_) {
    monX_ = a.makeVector(DType::DoubleWord, "bicg_mon_x");
    monB_ = a.makeVector(DType::DoubleWord, "bicg_mon_b");
    monR_ = a.makeVector(DType::DoubleWord, "bicg_mon_r");
    monNormSq_ = Tensor::scalar(DType::DoubleWord, "bicg_mon_nn");
    monBNormSq_ = Tensor::scalar(DType::DoubleWord, "bicg_mon_bb");
    monIter_ = Tensor::scalar(DType::Int32, "bicg_mon_i");
  }
  Tensor& monX = *monX_;
  Tensor& monB = *monB_;
  Tensor& monR = *monR_;
  Tensor& monNormSq = *monNormSq_;
  Tensor& monBNormSq = *monBNormSq_;
  Tensor& monIter = *monIter_;
  monIter = Expression(monIter) + 1;
  dsl::If(Expression(monIter) % static_cast<int>(monitorEvery_) == 0, [&] {
    monX = Expression(x).cast(DType::DoubleWord);
    monB = Expression(b).cast(DType::DoubleWord);
    a.residualExt(monR, monB, monX);
    monNormSq = Dot(Expression(monR), Expression(monR));
    monBNormSq = Dot(Expression(monB), Expression(monB));
    auto trueHist = trueHistory_;
    auto innerHist = history_;
    graph::TensorId nnId = monNormSq.id(), bbId = monBNormSq.id();
    dsl::HostCall([trueHist, innerHist, nnId, bbId](graph::Engine& e) {
      double rr = e.readScalar(nnId).toHostDouble();
      double bb = e.readScalar(bbId).toHostDouble();
      trueHist->push_back({innerHist->size(),
                           std::sqrt(std::abs(rr) / std::max(bb, 1e-300))});
    });
  });
}

}  // namespace graphene::solver
