// Execution profile collected by the Engine — the simulated analogue of
// Poplar's profiling feature (§VI-A: "For the IPU, we use Poplar's profiling
// feature to measure the required number of cycles").
//
// Compute cycles are attributed to the *category* of the compute set that
// spent them (e.g. "spmv", "reduce", "ilu_solve", "extended_precision"),
// which is exactly the granularity of the paper's Table IV breakdown.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace graphene::ipu {

/// One injected fault or recovery action, recorded in execution order. The
/// engine's fault-injection hooks append hardware-level events ("bitflip",
/// "stuck-zero", "exchange-drop", "exchange-corrupt", "stall"); the solver
/// layer appends its recovery actions ("recovery:restart",
/// "recovery:rollback") so a log reads as a complete fault/repair timeline.
struct FaultEvent {
  std::string kind;
  std::size_t superstep = 0;  // compute- or exchange-superstep index
  std::string target;         // tensor name, or "tile N" for stalls
  std::size_t element = 0;    // flat element index (bitflip / stuck-zero)
  int bit = -1;               // flipped bit, -1 when not applicable
  double cycles = 0;          // extra cycles charged (stalls)
  std::string detail;

  bool operator==(const FaultEvent& o) const {
    return kind == o.kind && superstep == o.superstep && target == o.target &&
           element == o.element && bit == o.bit && cycles == o.cycles &&
           detail == o.detail;
  }
};

struct Profile {
  /// Cycles per compute-set category (superstep durations, i.e. max over
  /// tiles, summed over executions).
  std::map<std::string, double> computeCycles;

  /// Cycles spent in exchange supersteps (incl. their sync).
  double exchangeCycles = 0;

  /// Cycles spent in compute-superstep BSP syncs.
  double syncCycles = 0;

  std::size_t computeSupersteps = 0;
  std::size_t exchangeSupersteps = 0;
  std::size_t exchangeInstructions = 0;
  std::size_t exchangedBytes = 0;

  /// Vertices run across all compute supersteps (simulator throughput
  /// statistics; no hardware analogue).
  std::size_t verticesExecuted = 0;

  /// Structured fault log: every injected fault and every solver-level
  /// recovery action, in execution order (empty when no plan is attached).
  std::vector<FaultEvent> faultEvents;

  double totalComputeCycles() const {
    double s = 0;
    for (const auto& [k, v] : computeCycles) s += v;
    return s;
  }

  double totalCycles() const {
    return totalComputeCycles() + exchangeCycles + syncCycles;
  }

  void clear() { *this = Profile{}; }

  Profile& operator+=(const Profile& o) {
    for (const auto& [k, v] : o.computeCycles) computeCycles[k] += v;
    exchangeCycles += o.exchangeCycles;
    syncCycles += o.syncCycles;
    computeSupersteps += o.computeSupersteps;
    exchangeSupersteps += o.exchangeSupersteps;
    exchangeInstructions += o.exchangeInstructions;
    exchangedBytes += o.exchangedBytes;
    verticesExecuted += o.verticesExecuted;
    faultEvents.insert(faultEvents.end(), o.faultEvents.begin(),
                       o.faultEvents.end());
    return *this;
  }
};

}  // namespace graphene::ipu
