// graphene-top — a `top` for a running SolverService.
//
// Polls the service's embedded HTTP listener (GET /metrics, /healthz and
// /jobs) and renders a refreshing terminal dashboard: job throughput since
// the previous poll, latency quantiles derived from the exposition's
// histogram buckets, circuit-breaker states and the (possibly shrunken)
// topology. Everything shown is recomputed from the text a Prometheus
// scraper would see — the tool has no privileged view of the service.
//
//   graphene-top --port 9100 [--host 127.0.0.1] [--interval 2] [--once]
//
// --once prints a single snapshot without clearing the screen (scripts,
// CI smoke). Quantiles use the Prometheus convention: linear interpolation
// within the first bucket whose cumulative count covers the rank; the +Inf
// bucket clamps to the largest finite bound.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "support/http_server.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

struct HistogramSeries {
  // (upper bound, cumulative count), ascending; the +Inf bucket last.
  std::vector<std::pair<double, double>> buckets;
  double sum = 0;
  double count = 0;
};

struct Exposition {
  std::map<std::string, double> scalars;  // counters and gauges
  std::map<std::string, HistogramSeries> histograms;
};

/// Parses the Prometheus text format back into values. Only the shapes
/// metricsToPrometheusText emits are handled: `name value` scalars and
/// `name_bucket{le="..."} value` histogram series with `_sum`/`_count`.
Exposition parseExposition(const std::string& text) {
  Exposition out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string name = line.substr(0, space);
    const double value = std::atof(line.c_str() + space + 1);
    const std::size_t brace = name.find("_bucket{le=\"");
    if (brace != std::string::npos) {
      const std::string family = name.substr(0, brace);
      const std::string le =
          name.substr(brace + 12, name.size() - brace - 12 - 2);
      const double bound = le == "+Inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::atof(le.c_str());
      out.histograms[family].buckets.emplace_back(bound, value);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, "_sum") == 0 &&
               out.histograms.count(name.substr(0, name.size() - 4))) {
      out.histograms[name.substr(0, name.size() - 4)].sum = value;
    } else if (name.size() > 6 &&
               name.compare(name.size() - 6, 6, "_count") == 0 &&
               out.histograms.count(name.substr(0, name.size() - 6))) {
      out.histograms[name.substr(0, name.size() - 6)].count = value;
    } else {
      out.scalars[name] = value;
    }
  }
  return out;
}

/// Prometheus-style histogram quantile over cumulative buckets.
double quantile(const HistogramSeries& h, double q) {
  if (h.count <= 0 || h.buckets.empty()) return 0;
  const double rank = q * h.count;
  double prevBound = 0, prevCum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const auto& [bound, cum] = h.buckets[i];
    if (cum >= rank) {
      if (std::isinf(bound)) return prevBound;  // clamp to largest finite
      const double inBucket = cum - prevCum;
      if (inBucket <= 0) return bound;
      return prevBound + (bound - prevBound) * (rank - prevCum) / inBucket;
    }
    prevBound = bound;
    prevCum = cum;
  }
  return prevBound;
}

double scalarOr(const Exposition& e, const std::string& name, double def) {
  auto it = e.scalars.find(name);
  return it == e.scalars.end() ? def : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  double intervalSeconds = 2.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      intervalSeconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::fprintf(stderr,
                   "usage: graphene-top --port P [--interval S] [--once]\n");
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr,
                 "graphene-top: --port is required (the service's "
                 "metricsPort / --serve port)\n");
    return 2;
  }

  double prevDone = -1;
  for (;;) {
    graphene::support::HttpServer::Response metrics, healthz, jobs;
    try {
      metrics = graphene::support::httpGet(
          static_cast<std::uint16_t>(port), "/metrics");
      healthz = graphene::support::httpGet(
          static_cast<std::uint16_t>(port), "/healthz");
      jobs = graphene::support::httpGet(
          static_cast<std::uint16_t>(port), "/jobs");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "graphene-top: 127.0.0.1:%d unreachable: %s\n",
                   port, e.what());
      return 1;
    }
    const Exposition exp = parseExposition(metrics.body);
    const graphene::json::Value health = graphene::json::parse(healthz.body);
    const graphene::json::Value jobsDoc = graphene::json::parse(jobs.body);

    if (!once) std::printf("\033[2J\033[H");
    const double accepted = scalarOr(exp, "graphene_service_jobs_accepted", 0);
    const double completed =
        scalarOr(exp, "graphene_service_jobs_completed", 0);
    const double failed = scalarOr(exp, "graphene_service_jobs_failed", 0);
    const double done = completed + failed;
    std::printf("graphene-top — 127.0.0.1:%d  |  accepted %.0f  "
                "completed %.0f  failed %.0f  queue %.0f",
                port, accepted, completed, failed,
                scalarOr(exp, "graphene_service_queue_depth", 0));
    if (prevDone >= 0 && intervalSeconds > 0) {
      std::printf("  |  %.1f jobs/s", (done - prevDone) / intervalSeconds);
    }
    std::printf("\n");
    prevDone = done;

    const auto& topo = health.at("topology");
    std::printf("topology: %lld/%lld chips alive, %lld tiles, "
                "fingerprint %s\n",
                static_cast<long long>(topo.at("aliveIpus").asNumber()),
                static_cast<long long>(topo.at("ipus").asNumber()),
                static_cast<long long>(topo.at("aliveTiles").asNumber()),
                topo.at("fingerprint").asString().c_str());

    graphene::TextTable lat({"latency family", "count", "p50", "p99"});
    for (const auto& [family, series] : exp.histograms) {
      if (series.count <= 0) continue;
      lat.addRow({family, graphene::formatSig(series.count, 3),
                  graphene::formatSig(quantile(series, 0.50), 3),
                  graphene::formatSig(quantile(series, 0.99), 3)});
    }
    if (lat.rowCount() > 0) std::printf("\n%s", lat.render().c_str());

    const auto& breakers = health.at("breakers").asArray();
    if (!breakers.empty()) {
      graphene::TextTable brk(
          {"breaker (structure)", "state", "consecutive failures"});
      for (const auto& b : breakers) {
        brk.addRow({b.at("structureFingerprint").asString(),
                    b.at("state").asString(),
                    graphene::formatSig(
                        b.at("consecutiveFailures").asNumber(), 3)});
      }
      std::printf("\n%s", brk.render().c_str());
    }

    const auto& jobRows = jobsDoc.at("jobs").asArray();
    graphene::TextTable jt({"job", "phase", "verdict", "attempts",
                            "Mcycles"});
    const std::size_t tail = jobRows.size() > 10 ? jobRows.size() - 10 : 0;
    for (std::size_t i = tail; i < jobRows.size(); ++i) {
      const auto& j = jobRows[i];
      const bool done2 = j.contains("verdict");
      jt.addRow({graphene::formatSig(j.at("id").asNumber(), 6),
                 j.at("phase").asString(),
                 done2 ? j.at("verdict").asString() : "-",
                 done2 ? graphene::formatSig(j.at("attempts").asNumber(), 3)
                       : "-",
                 done2 ? graphene::formatSig(
                             j.at("simCycles").asNumber() / 1e6, 3)
                       : "-"});
    }
    if (jt.rowCount() > 0) std::printf("\n%s", jt.render().c_str());
    std::fflush(stdout);

    if (once) return 0;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(intervalSeconds));
  }
}
