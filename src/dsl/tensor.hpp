// TensorDSL — global-perspective tensor operations (paper §III).
//
// Tensors are distributed over tiles; expressions on them are lazy
// *expression objects* (§III-C) that materialise into generated CodeDSL
// codelets only when a value is needed. Elementwise ops, broadcasts of
// scalars, reductions, and control flow (If / While / Repeat) are provided;
// individual element manipulation is deliberately impossible — that is
// CodeDSL's job.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dsl/codedsl.hpp"
#include "dsl/context.hpp"
#include "graph/tensor.hpp"

namespace graphene::dsl {

class Expression;

/// Reduction operators supported by TensorDSL (§III: reductions are one of
/// the global operations of the language).
enum class ReduceKind { Sum, Max, Min, AbsMax };

/// Handle to a tensor variable distributed over the tiles of the active
/// Context. Copying the handle copies the *data* (a new tensor variable is
/// created), matching the value semantics of the paper's solver listings.
class Tensor {
 public:
  /// A vector of `size` elements, row-partitioned linearly over all tiles.
  Tensor(DType type, std::size_t size, std::string name = "");

  /// A tensor with an explicit (possibly ragged) per-tile mapping.
  Tensor(DType type, graph::TileMapping mapping, std::string name = "");

  /// A scalar, replicated across all tiles and kept consistent.
  static Tensor scalar(DType type, std::string name = "");

  /// Materialises an expression into a fresh tensor.
  Tensor(const Expression& e);  // NOLINT(google-explicit-constructor)

  /// Deep copy: new tensor variable plus an elementwise copy.
  Tensor(const Tensor& other);

  /// Moves transfer the handle (no new tensor, no copy program) — they are
  /// what containers and factory returns use.
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept = default;

  /// Materialises an expression into this tensor (elementwise, broadcast).
  Tensor& operator=(const Expression& e);

  /// Elementwise copy into this tensor.
  Tensor& operator=(const Tensor& other);

  /// Reduction over all elements; materialises immediately and returns a
  /// reference to the resulting replicated scalar.
  Expression reduce(ReduceKind kind = ReduceKind::Sum) const;

  /// Explicit dtype conversion.
  Expression cast(DType type) const;

  std::size_t size() const;
  graph::TensorId id() const { return id_; }
  DType type() const;
  const graph::TensorInfo& info() const;
  bool isScalarShaped() const;

  /// Wraps an existing graph tensor (no new allocation) — used by library
  /// code that builds tensors directly.
  static Tensor wrap(graph::TensorId id);

 private:
  Tensor() = default;
  graph::TensorId id_ = graph::kInvalidTensor;
};

/// Cheap, non-owning reference to a tensor variable. Library entry points
/// take TensorRef so that brace-lists like Execute({x, y}, ...) never invoke
/// Tensor's deep-copying copy constructor.
class TensorRef {
 public:
  TensorRef(const Tensor& t) : id_(t.id()) {}  // NOLINT
  explicit TensorRef(graph::TensorId id) : id_(id) {}
  graph::TensorId id() const { return id_; }

 private:
  graph::TensorId id_;
};

namespace detail {
struct ExpNode;
using ExpNodePtr = std::shared_ptr<const ExpNode>;
}  // namespace detail

/// A lazy elementwise expression over tensors and scalar literals.
class Expression {
 public:
  Expression(const Tensor& t);  // NOLINT(google-explicit-constructor)
  Expression(float v);          // NOLINT(google-explicit-constructor)
  Expression(double v);         // NOLINT: stored as float32
  Expression(int v);            // NOLINT(google-explicit-constructor)
  static Expression constant(Scalar s);

  Expression cast(DType type) const;

  /// Reduction; materialises now, returns a replicated-scalar ref.
  Expression reduce(ReduceKind kind = ReduceKind::Sum) const;

  /// Materialises into a fresh tensor. `category` labels the compute set
  /// for profiling (Table IV).
  Tensor materialize(const std::string& category = "elementwise") const;

  /// Materialises into an existing tensor (shapes must broadcast-match).
  void materializeInto(Tensor& dst,
                       const std::string& category = "elementwise") const;

  const detail::ExpNodePtr& node() const { return node_; }
  DType type() const;

  /// True if every referenced tensor is scalar-shaped.
  bool isScalarShaped() const;

  static Expression fromNode(detail::ExpNodePtr node);

 private:
  Expression() = default;
  detail::ExpNodePtr node_;
};

Expression operator+(const Expression& a, const Expression& b);
Expression operator-(const Expression& a, const Expression& b);
Expression operator*(const Expression& a, const Expression& b);
Expression operator/(const Expression& a, const Expression& b);
Expression operator<(const Expression& a, const Expression& b);
Expression operator<=(const Expression& a, const Expression& b);
Expression operator>(const Expression& a, const Expression& b);
Expression operator>=(const Expression& a, const Expression& b);
Expression operator==(const Expression& a, const Expression& b);
Expression operator!=(const Expression& a, const Expression& b);
Expression operator&&(const Expression& a, const Expression& b);
Expression operator||(const Expression& a, const Expression& b);
Expression operator%(const Expression& a, const Expression& b);
Expression operator-(const Expression& a);
Expression operator!(const Expression& a);
Expression Abs(const Expression& a);
Expression Sqrt(const Expression& a);
Expression Min(const Expression& a, const Expression& b);
Expression Max(const Expression& a, const Expression& b);
Expression Select(const Expression& cond, const Expression& ifTrue,
                  const Expression& ifFalse);

/// Joint reduction: reduces k expressions in ONE fused pass — one partial
/// compute set, one gather exchange, one final combine, one broadcast —
/// instead of k separate reduction trees. Pipelined Krylov methods use this
/// to merge their dot products into a single global sync per iteration
/// (Ghysels & Vanroose). All expressions must share a dtype and each needs a
/// non-scalar operand. The optional `overlap` callback is emitted between
/// the gather and the final combine: programs emitted there execute while
/// the reduction's exchange is in flight, hiding its latency. On pods with
/// two-level reductions enabled (Graph::ReduceMode) the gather runs
/// hierarchically: tiles reduce to a per-IPU leader on-chip, and one
/// k-vector per IPU crosses the links. Returns k replicated scalars.
std::vector<Tensor> ReduceMany(const std::vector<Expression>& exprs,
                               ReduceKind kind = ReduceKind::Sum,
                               const std::function<void()>& overlap = {});

/// Dot product: (a * b).reduce().
Expression Dot(const Expression& a, const Expression& b);
/// Euclidean norm: sqrt((a * a).reduce()).
Expression Norm2(const Expression& a);
/// Infinity norm: Abs(a).reduce(Max).
Expression NormInf(const Expression& a);

// ---------------------------------------------------------------------------
// TensorDSL control flow (builds the execution schedule via the control-flow
// stack, §III-B).
// ---------------------------------------------------------------------------

void If(const Expression& cond, const std::function<void()>& then,
        const std::function<void()>& otherwise = {});
void While(const Expression& cond, const std::function<void()>& body);
void Repeat(std::size_t times, const std::function<void()>& body);

/// Host callback printing a label and the tensor's first elements
/// (progress reporting, §III-A step 4).
void Print(const std::string& label, const Tensor& t);

/// Arbitrary host callback scheduled at this point of the program.
void HostCall(std::function<void(graph::Engine&)> fn);

// ---------------------------------------------------------------------------
// CodeDSL entry point: Execute traces a codelet over the given tensors and
// schedules it on every tile holding data (paper Fig. 1).
// ---------------------------------------------------------------------------

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(std::vector<Value>&)>& fn,
             const std::string& category = "codedsl");

// Arity sugar matching the paper's style: Execute({x}, [](Value x) { ... }).
void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value)>& fn,
             const std::string& category = "codedsl");
void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value)>& fn,
             const std::string& category = "codedsl");
void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value, Value)>& fn,
             const std::string& category = "codedsl");
void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value, Value, Value)>& fn,
             const std::string& category = "codedsl");

/// Core Execute working on an explicit tile list; `tiles` restricts which
/// tiles get a vertex (empty = every tile where some argument has data).
/// Library building block for solvers. Returns the compute set it emitted,
/// so callers can attach per-execution metrics to it
/// (Graph::addComputeSetMetric).
graph::ComputeSetId ExecuteOnTiles(
    const std::vector<TensorRef>& tensors,
    const std::function<void(std::vector<Value>&)>& fn,
    const std::string& category, const std::vector<std::size_t>& tiles);

}  // namespace graphene::dsl
