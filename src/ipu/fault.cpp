#include "ipu/fault.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace graphene::ipu {

namespace {

/// The one list of valid fault kinds, shared by every validation message
/// that names the set — adding a kind here updates them all.
constexpr const char* kValidFaultKinds =
    "bitflip, stuck-zero, exchange-drop, exchange-corrupt, stall, "
    "tile-dead, link-degraded, sram-region-dead, ipu-dead, ipu-link-dead, "
    "ipu-link-degraded";

FaultPlan::Rule::Kind parseKind(const std::string& s) {
  using Kind = FaultPlan::Rule::Kind;
  if (s == "bitflip" || s == "bit-flip") return Kind::BitFlip;
  if (s == "stuck-zero" || s == "zero") return Kind::StuckZero;
  if (s == "exchange-drop" || s == "drop") return Kind::ExchangeDrop;
  if (s == "exchange-corrupt" || s == "corrupt") return Kind::ExchangeCorrupt;
  if (s == "stall") return Kind::Stall;
  if (s == "tile-dead" || s == "tile_dead") return Kind::TileDead;
  if (s == "link-degraded" || s == "link_degraded") return Kind::LinkDegraded;
  if (s == "sram-region-dead" || s == "sram_region_dead") {
    return Kind::SramRegionDead;
  }
  if (s == "ipu-dead" || s == "ipu_dead") return Kind::IpuDead;
  if (s == "ipu-link-dead" || s == "ipu_link_dead") return Kind::IpuLinkDead;
  if (s == "ipu-link-degraded" || s == "ipu_link_degraded") {
    return Kind::IpuLinkDegraded;
  }
  throw ParseError("unknown fault type '" + s + "' (valid: " +
                   kValidFaultKinds + ")");
}

const char* kindName(FaultPlan::Rule::Kind kind) {
  using Kind = FaultPlan::Rule::Kind;
  switch (kind) {
    case Kind::BitFlip: return "bitflip";
    case Kind::StuckZero: return "stuck-zero";
    case Kind::ExchangeDrop: return "exchange-drop";
    case Kind::ExchangeCorrupt: return "exchange-corrupt";
    case Kind::Stall: return "stall";
    case Kind::TileDead: return "tile-dead";
    case Kind::LinkDegraded: return "link-degraded";
    case Kind::SramRegionDead: return "sram-region-dead";
    case Kind::IpuDead: return "ipu-dead";
    case Kind::IpuLinkDead: return "ipu-link-dead";
    case Kind::IpuLinkDegraded: return "ipu-link-degraded";
  }
  GRAPHENE_UNREACHABLE("bad fault kind");
}

/// What a fault-rule key must hold (same strict-validation style as the
/// solver configs: unknown or ill-typed keys are errors that name the key
/// and list the valid set).
enum class KeyKind { Number, String, Array };

const char* toString(KeyKind kind) {
  switch (kind) {
    case KeyKind::Number: return "number";
    case KeyKind::String: return "string";
    case KeyKind::Array: return "array";
  }
  return "?";
}

struct KeySpec {
  const char* key;
  KeyKind kind;
};

void validateKeys(const json::Value& config, const std::string& where,
                  std::initializer_list<KeySpec> allowed) {
  for (const auto& [key, value] : config.asObject()) {
    const KeySpec* spec = nullptr;
    for (const KeySpec& s : allowed) {
      if (key == s.key) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      std::string valid;
      for (const KeySpec& s : allowed) {
        if (!valid.empty()) valid += ", ";
        valid += s.key;
      }
      GRAPHENE_CHECK(false, "unknown key '", key, "' in ", where,
                     " (valid keys: ", valid, ")");
    }
    const bool ok = spec->kind == KeyKind::Number   ? value.isNumber()
                    : spec->kind == KeyKind::String ? value.isString()
                                                    : value.isArray();
    GRAPHENE_CHECK(ok, "key '", key, "' in ", where, " must be a ",
                   toString(spec->kind));
  }
}

void validateRule(const json::Value& f, FaultPlan::Rule::Kind kind) {
  using Kind = FaultPlan::Rule::Kind;
  const std::string where =
      std::string("'") + kindName(kind) + "' fault rule";
  // Shared transient-rule knobs.
  const KeySpec type{"type", KeyKind::String};
  const KeySpec tensor{"tensor", KeyKind::String};
  const KeySpec superstep{"superstep", KeyKind::Number};
  const KeySpec probability{"probability", KeyKind::Number};
  const KeySpec skip{"skip", KeyKind::Number};
  const KeySpec count{"count", KeyKind::Number};
  switch (kind) {
    case Kind::BitFlip:
      validateKeys(f, where,
                   {type, tensor, superstep, {"element", KeyKind::Number},
                    {"bit", KeyKind::Number}, probability, skip, count});
      break;
    case Kind::StuckZero:
      validateKeys(f, where,
                   {type, tensor, superstep, {"element", KeyKind::Number},
                    probability, skip, count});
      break;
    case Kind::ExchangeDrop:
      validateKeys(f, where, {type, tensor, superstep, probability, skip,
                              count});
      break;
    case Kind::ExchangeCorrupt:
      validateKeys(f, where, {type, tensor, superstep,
                              {"bit", KeyKind::Number}, probability, skip,
                              count});
      break;
    case Kind::Stall:
      validateKeys(f, where,
                   {type, {"tile", KeyKind::Number},
                    {"cycles", KeyKind::Number}, superstep, probability, skip,
                    count});
      break;
    case Kind::TileDead:
      validateKeys(f, where, {type, {"tile", KeyKind::Number}, superstep,
                              {"cycles", KeyKind::Number}});
      break;
    case Kind::LinkDegraded:
      validateKeys(f, where, {type, {"tile", KeyKind::Number}, superstep,
                              {"factor", KeyKind::Number}});
      break;
    case Kind::SramRegionDead:
      validateKeys(f, where, {type, tensor, superstep,
                              {"element", KeyKind::Number},
                              {"elements", KeyKind::Number}});
      break;
    case Kind::IpuDead:
      validateKeys(f, where, {type, {"ipu", KeyKind::Number}, superstep,
                              {"cycles", KeyKind::Number}});
      break;
    case Kind::IpuLinkDead:
      validateKeys(f, where, {type, {"from", KeyKind::Number},
                              {"to", KeyKind::Number}, superstep});
      break;
    case Kind::IpuLinkDegraded:
      validateKeys(f, where, {type, {"from", KeyKind::Number},
                              {"to", KeyKind::Number}, superstep,
                              {"factor", KeyKind::Number}});
      break;
  }
}

bool isHardKind(FaultPlan::Rule::Kind kind) {
  using Kind = FaultPlan::Rule::Kind;
  return kind == Kind::TileDead || kind == Kind::LinkDegraded ||
         kind == Kind::SramRegionDead || kind == Kind::IpuDead ||
         kind == Kind::IpuLinkDead || kind == Kind::IpuLinkDegraded;
}

/// A hard fault is active at superstep `index` once its trigger is reached.
bool hardActive(const FaultPlan::Rule& rule, std::int64_t index) {
  return rule.superstep < 0 || index >= rule.superstep;
}

}  // namespace

FaultPlan FaultPlan::fromJson(const json::Value& config) {
  GRAPHENE_CHECK(config.isObject(), "fault plan must be a JSON object");
  validateKeys(config, "fault plan",
               {{"seed", KeyKind::Number}, {"faults", KeyKind::Array}});
  FaultPlan plan;
  plan.seed_ = static_cast<std::uint64_t>(
      config.getOr("seed", std::int64_t(0x9E3779B97F4A7C15ull)));
  plan.rng_ = Rng(plan.seed_);
  if (!config.contains("faults")) return plan;
  for (const json::Value& f : config.at("faults").asArray()) {
    GRAPHENE_CHECK(f.isObject(), "each fault rule must be a JSON object");
    GRAPHENE_CHECK(f.contains("type"),
                   "each fault rule needs a 'type' key (", kValidFaultKinds,
                   ")");
    GRAPHENE_CHECK(f.at("type").isString(),
                   "key 'type' in fault rule must be a string");
    Rule r;
    r.kind = parseKind(f.at("type").asString());
    validateRule(f, r.kind);
    r.tensor = f.getOr("tensor", std::string());
    r.superstep = f.getOr("superstep", std::int64_t(-1));
    r.probability = f.getOr("probability", 1.0);
    GRAPHENE_CHECK(r.probability >= 0.0 && r.probability <= 1.0,
                   "fault probability must be in [0, 1], got ", r.probability);
    r.element = f.getOr("element", std::int64_t(-1));
    r.bit = static_cast<int>(f.getOr("bit", std::int64_t(-1)));
    r.tile = static_cast<std::size_t>(f.getOr("tile", std::int64_t(0)));
    r.stallCycles = f.getOr("cycles", 0.0);
    r.skip = static_cast<std::size_t>(f.getOr("skip", std::int64_t(0)));
    const std::int64_t count =
        f.getOr("count", std::int64_t(-1));
    r.count = count < 0 ? SIZE_MAX : static_cast<std::size_t>(count);
    if (r.kind == Rule::Kind::Stall) {
      GRAPHENE_CHECK(r.stallCycles > 0,
                     "stall fault needs positive 'cycles'");
    }
    if (r.kind == Rule::Kind::TileDead) {
      // A dead tile hangs at the barrier; what the fabric observes per
      // superstep is a watchdog-scale cycle count, not a stall.
      if (r.stallCycles <= 0) r.stallCycles = 1e9;
    }
    if (r.kind == Rule::Kind::LinkDegraded) {
      r.factor = f.getOr("factor", 4.0);
      GRAPHENE_CHECK(r.factor >= 1.0,
                     "link-degraded 'factor' must be >= 1, got ", r.factor);
    }
    if (r.kind == Rule::Kind::SramRegionDead) {
      const std::int64_t elements = f.getOr("elements", std::int64_t(1));
      GRAPHENE_CHECK(elements >= 1,
                     "sram-region-dead 'elements' must be >= 1, got ",
                     elements);
      r.regionElements = static_cast<std::size_t>(elements);
    }
    if (r.kind == Rule::Kind::IpuDead) {
      GRAPHENE_CHECK(f.contains("ipu"),
                     "ipu-dead fault needs an 'ipu' key (the chip to kill)");
      r.ipu = static_cast<std::size_t>(f.getOr("ipu", std::int64_t(0)));
      // Same watchdog-scale hang per superstep as tile-dead, for every tile
      // of the chip.
      if (r.stallCycles <= 0) r.stallCycles = 1e9;
    }
    if (r.kind == Rule::Kind::IpuLinkDead ||
        r.kind == Rule::Kind::IpuLinkDegraded) {
      const std::string where = std::string("'") + kindName(r.kind) + "'";
      GRAPHENE_CHECK(f.contains("from") && f.contains("to"), where,
                     " fault needs 'from' and 'to' keys (the ordered chip "
                     "pair whose link it hits)");
      r.fromIpu = static_cast<std::size_t>(f.getOr("from", std::int64_t(0)));
      r.toIpu = static_cast<std::size_t>(f.getOr("to", std::int64_t(0)));
      GRAPHENE_CHECK(r.fromIpu != r.toIpu, where,
                     " fault needs 'from' != 'to' — a chip has no link to "
                     "itself");
      if (r.kind == Rule::Kind::IpuLinkDegraded) {
        r.factor = f.getOr("factor", 4.0);
        GRAPHENE_CHECK(r.factor >= 1.0,
                       "ipu-link-degraded 'factor' must be >= 1, got ",
                       r.factor);
      }
    }
    plan.rules_.push_back(r);
  }
  return plan;
}

FaultPlan FaultPlan::fromJsonText(const std::string& text) {
  return fromJson(json::parse(text));
}

void FaultPlan::reset() {
  rng_ = Rng(seed_);
  states_.clear();
  injected_ = 0;
  pendingCorruptBit_ = -1;
}

bool FaultPlan::fires(const Rule& rule, RuleState& state, std::int64_t index) {
  if (rule.superstep >= 0 && rule.superstep != index) return false;
  if (state.injected >= rule.count) return false;
  if (rule.probability < 1.0 && rng_.nextDouble() >= rule.probability) {
    return false;
  }
  if (state.skipped < rule.skip) {
    ++state.skipped;
    return false;
  }
  return true;
}

const std::vector<std::size_t>& FaultPlan::matchingTensors(
    const Rule& rule, RuleState& state, FaultSurface& surface) {
  const std::size_t n = surface.numTensors();
  if (state.matchedAt != n) {
    state.matches.clear();
    for (std::size_t t = 0; t < n; ++t) {
      if (rule.tensor.empty() ||
          surface.tensorName(t).find(rule.tensor) != std::string::npos) {
        state.matches.push_back(t);
      }
    }
    state.matchedAt = n;
  }
  return state.matches;
}

bool FaultPlan::hasHardFaults() const {
  for (const Rule& rule : rules_) {
    if (isHardKind(rule.kind)) return true;
  }
  return false;
}

bool FaultPlan::tileDead(std::size_t tile, std::size_t index) const {
  const auto idx = static_cast<std::int64_t>(index);
  for (const Rule& rule : rules_) {
    if (rule.kind == Rule::Kind::TileDead && rule.tile == tile &&
        hardActive(rule, idx)) {
      return true;
    }
  }
  return false;
}

double FaultPlan::deadTileCycles(std::size_t tile) const {
  double cycles = 0;
  for (const Rule& rule : rules_) {
    if (rule.kind == Rule::Kind::TileDead && rule.tile == tile) {
      cycles = std::max(cycles, rule.stallCycles);
    }
  }
  return cycles;
}

double FaultPlan::linkFactor(std::size_t index) const {
  const auto idx = static_cast<std::int64_t>(index);
  double factor = 1.0;
  for (const Rule& rule : rules_) {
    if (rule.kind == Rule::Kind::LinkDegraded && hardActive(rule, idx)) {
      factor *= rule.factor;
    }
  }
  return factor;
}

bool FaultPlan::ipuDead(std::size_t ipu, std::size_t index) const {
  const auto idx = static_cast<std::int64_t>(index);
  for (const Rule& rule : rules_) {
    if (rule.kind == Rule::Kind::IpuDead && rule.ipu == ipu &&
        hardActive(rule, idx)) {
      return true;
    }
  }
  return false;
}

double FaultPlan::deadIpuCycles(std::size_t ipu) const {
  double cycles = 0;
  for (const Rule& rule : rules_) {
    if (rule.kind == Rule::Kind::IpuDead && rule.ipu == ipu) {
      cycles = std::max(cycles, rule.stallCycles);
    }
  }
  return cycles;
}

LinkFaults FaultPlan::linkFaults(std::size_t exchangeIndex,
                                 std::size_t computeIndex) const {
  const auto xIdx = static_cast<std::int64_t>(exchangeIndex);
  const auto cIdx = static_cast<std::int64_t>(computeIndex);
  LinkFaults faults;
  for (const Rule& rule : rules_) {
    switch (rule.kind) {
      case Rule::Kind::IpuLinkDead:
        if (hardActive(rule, xIdx)) {
          faults.deadPairs.emplace_back(rule.fromIpu, rule.toIpu);
        }
        break;
      case Rule::Kind::IpuLinkDegraded:
        if (hardActive(rule, xIdx)) {
          faults.degraded.push_back({rule.fromIpu, rule.toIpu, rule.factor});
        }
        break;
      case Rule::Kind::IpuDead:
        // A dying chip still gets its traffic priced (the watchdog must keep
        // seeing it), but it cannot serve as a re-route relay.
        if (hardActive(rule, cIdx) && !faults.ipuDead(rule.ipu)) {
          faults.deadIpus.push_back(rule.ipu);
        }
        break;
      default:
        break;
    }
  }
  return faults;
}

void FaultPlan::onComputeSuperstepStart(std::size_t index,
                                        FaultSurface& surface) {
  states_.resize(rules_.size());
  const auto idx = static_cast<std::int64_t>(index);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    RuleState& state = states_[i];
    switch (rule.kind) {
      case Rule::Kind::TileDead: {
        if (!hardActive(rule, idx) || state.activated) break;
        state.activated = true;
        FaultEvent ev;
        ev.kind = kindName(rule.kind);
        ev.superstep = index;
        ev.target = "tile " + std::to_string(rule.tile);
        ev.cycles = rule.stallCycles;
        ev.detail = "permanent: tile stops executing; outgoing transfers "
                    "are lost";
        surface.profile().faultEvents.push_back(std::move(ev));
        ++injected_;
        break;
      }
      case Rule::Kind::IpuDead: {
        if (!hardActive(rule, idx) || state.activated) break;
        state.activated = true;
        FaultEvent ev;
        ev.kind = kindName(rule.kind);
        ev.superstep = index;
        ev.target = "ipu " + std::to_string(rule.ipu);
        ev.cycles = rule.stallCycles;
        ev.detail = "permanent: every tile of the chip stops executing; "
                    "its outgoing transfers are lost";
        surface.profile().faultEvents.push_back(std::move(ev));
        ++injected_;
        break;
      }
      case Rule::Kind::SramRegionDead: {
        if (!hardActive(rule, idx)) break;
        if (!state.activated) {
          const auto& matches = matchingTensors(rule, state, surface);
          if (matches.empty()) break;
          const std::size_t tensor =
              matches.size() == 1 ? matches[0]
                                  : matches[rng_.nextBelow(matches.size())];
          const std::size_t elems = surface.tensorElements(tensor);
          if (elems == 0) break;
          state.activated = true;
          state.regionTensor = tensor;
          state.regionStart =
              rule.element >= 0
                  ? static_cast<std::size_t>(rule.element) % elems
                  : rng_.nextBelow(elems);
          FaultEvent ev;
          ev.kind = kindName(rule.kind);
          ev.superstep = index;
          ev.target = surface.tensorName(tensor);
          ev.element = state.regionStart;
          ev.detail = "permanent: " + std::to_string(rule.regionElements) +
                      " element(s) stuck at zero";
          surface.profile().faultEvents.push_back(std::move(ev));
          ++injected_;
        }
        // Persistence: re-pin the region to zero before every superstep, so
        // writes from the previous superstep never stick.
        const std::size_t elems =
            surface.tensorElements(state.regionTensor);
        for (std::size_t e = 0; e < rule.regionElements; ++e) {
          const std::size_t flat = state.regionStart + e;
          if (flat >= elems) break;
          surface.zeroElement(state.regionTensor, flat);
        }
        break;
      }
      default:
        break;  // transient rules and link-degraded have their own hooks
    }
  }
}

double FaultPlan::onExchangeSuperstep(std::size_t index,
                                      FaultSurface& surface) {
  states_.resize(rules_.size());
  const auto idx = static_cast<std::int64_t>(index);
  double factor = 1.0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    RuleState& state = states_[i];
    if (rule.kind == Rule::Kind::LinkDegraded && hardActive(rule, idx)) {
      if (!state.activated) {
        state.activated = true;
        FaultEvent ev;
        ev.kind = kindName(rule.kind);
        ev.superstep = index;
        ev.target = "tile " + std::to_string(rule.tile);
        ev.detail = "permanent: fabric cost x" + std::to_string(rule.factor) +
                    " from this exchange on";
        surface.profile().faultEvents.push_back(std::move(ev));
        ++injected_;
      }
      factor *= rule.factor;
    }
    // The pod-scale link kinds only log their activation here; their cost
    // effect is per ordered pair, applied inside priceExchange via
    // linkFaults() — not through the global factor.
    if ((rule.kind == Rule::Kind::IpuLinkDead ||
         rule.kind == Rule::Kind::IpuLinkDegraded) &&
        hardActive(rule, idx) && !state.activated) {
      state.activated = true;
      FaultEvent ev;
      ev.kind = kindName(rule.kind);
      ev.superstep = index;
      ev.target = "link " + std::to_string(rule.fromIpu) + "->" +
                  std::to_string(rule.toIpu);
      ev.detail = rule.kind == Rule::Kind::IpuLinkDead
                      ? "permanent: link severed; traffic re-routes via a "
                        "surviving chip"
                      : "permanent: link cost x" + std::to_string(rule.factor) +
                            " from this exchange on";
      surface.profile().faultEvents.push_back(std::move(ev));
      ++injected_;
    }
  }
  return factor;
}

double FaultPlan::afterComputeSuperstep(std::size_t index,
                                        FaultSurface& surface) {
  states_.resize(rules_.size());
  const auto idx = static_cast<std::int64_t>(index);
  double extraCycles = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    RuleState& state = states_[i];
    switch (rule.kind) {
      case Rule::Kind::BitFlip:
      case Rule::Kind::StuckZero: {
        // Fast pre-checks before consuming randomness.
        if (rule.superstep >= 0 && rule.superstep != idx) break;
        if (state.injected >= rule.count) break;
        const auto& matches = matchingTensors(rule, state, surface);
        if (matches.empty()) break;
        if (!fires(rule, state, idx)) break;
        const std::size_t tensor =
            matches.size() == 1 ? matches[0]
                                : matches[rng_.nextBelow(matches.size())];
        const std::size_t elems = surface.tensorElements(tensor);
        if (elems == 0) break;
        const std::size_t element =
            rule.element >= 0
                ? static_cast<std::size_t>(rule.element) % elems
                : rng_.nextBelow(elems);
        FaultEvent ev;
        ev.kind = kindName(rule.kind);
        ev.superstep = index;
        ev.target = surface.tensorName(tensor);
        ev.element = element;
        if (rule.kind == Rule::Kind::BitFlip) {
          ev.bit = rule.bit >= 0 ? rule.bit
                                 : static_cast<int>(rng_.nextBelow(32));
          surface.flipBit(tensor, element, static_cast<unsigned>(ev.bit));
        } else {
          surface.zeroElement(tensor, element);
        }
        surface.profile().faultEvents.push_back(std::move(ev));
        ++state.injected;
        ++injected_;
        break;
      }
      case Rule::Kind::Stall: {
        if (!fires(rule, state, idx)) break;
        FaultEvent ev;
        ev.kind = kindName(rule.kind);
        ev.superstep = index;
        ev.target = "tile " + std::to_string(rule.tile);
        ev.cycles = rule.stallCycles;
        surface.profile().faultEvents.push_back(std::move(ev));
        extraCycles += rule.stallCycles;
        ++state.injected;
        ++injected_;
        break;
      }
      case Rule::Kind::ExchangeDrop:
      case Rule::Kind::ExchangeCorrupt:
        break;  // exchange hooks only
      case Rule::Kind::TileDead:
      case Rule::Kind::LinkDegraded:
      case Rule::Kind::SramRegionDead:
      case Rule::Kind::IpuDead:
      case Rule::Kind::IpuLinkDead:
      case Rule::Kind::IpuLinkDegraded:
        break;  // permanent faults: onComputeSuperstepStart / exchange hooks
    }
  }
  return extraCycles;
}

TransferFate FaultPlan::onTransfer(std::size_t exchangeIndex,
                                   std::size_t transferIndex,
                                   std::size_t dstTensor,
                                   FaultSurface& surface) {
  (void)transferIndex;
  states_.resize(rules_.size());
  const auto idx = static_cast<std::int64_t>(exchangeIndex);
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const Rule& rule = rules_[i];
    if (rule.kind != Rule::Kind::ExchangeDrop &&
        rule.kind != Rule::Kind::ExchangeCorrupt) {
      continue;
    }
    RuleState& state = states_[i];
    if (rule.superstep >= 0 && rule.superstep != idx) continue;
    if (state.injected >= rule.count) continue;
    if (!rule.tensor.empty() &&
        surface.tensorName(dstTensor).find(rule.tensor) ==
            std::string::npos) {
      continue;
    }
    if (!fires(rule, state, idx)) continue;
    ++state.injected;
    ++injected_;
    if (rule.kind == Rule::Kind::ExchangeDrop) {
      FaultEvent ev;
      ev.kind = kindName(rule.kind);
      ev.superstep = exchangeIndex;
      ev.target = surface.tensorName(dstTensor);
      ev.detail = "transfer payload lost in flight";
      surface.profile().faultEvents.push_back(std::move(ev));
      return TransferFate::Drop;
    }
    pendingCorruptBit_ = rule.bit;
    return TransferFate::Corrupt;
  }
  return TransferFate::Deliver;
}

void FaultPlan::corruptDelivered(std::size_t exchangeIndex,
                                 std::size_t dstTensor, std::size_t dstFlat,
                                 std::size_t count, FaultSurface& surface) {
  GRAPHENE_CHECK(count > 0, "cannot corrupt an empty transfer");
  // The bit choice was fixed when the Corrupt verdict fell; the element
  // within the delivered range is drawn from the plan RNG.
  const int bit = pendingCorruptBit_;
  pendingCorruptBit_ = -1;
  FaultEvent ev;
  ev.kind = "exchange-corrupt";
  ev.superstep = exchangeIndex;
  ev.target = surface.tensorName(dstTensor);
  ev.element = dstFlat + rng_.nextBelow(count);
  ev.bit = bit >= 0 ? bit : static_cast<int>(rng_.nextBelow(32));
  ev.detail = "transfer payload damaged in flight";
  surface.flipBit(dstTensor, ev.element, static_cast<unsigned>(ev.bit));
  surface.profile().faultEvents.push_back(std::move(ev));
}

json::Value faultEventsToJson(const std::vector<FaultEvent>& events) {
  json::Array out;
  out.reserve(events.size());
  for (const FaultEvent& ev : events) {
    json::Object o;
    o["kind"] = ev.kind;
    o["superstep"] = ev.superstep;
    o["target"] = ev.target;
    o["element"] = ev.element;
    if (ev.bit >= 0) o["bit"] = ev.bit;
    if (ev.cycles > 0) o["cycles"] = ev.cycles;
    if (!ev.detail.empty()) o["detail"] = ev.detail;
    out.push_back(json::Value(std::move(o)));
  }
  return json::Value(std::move(out));
}

std::vector<FaultEvent> faultEventsFromJson(const json::Value& doc) {
  GRAPHENE_CHECK(doc.isArray(), "fault log must be a JSON array");
  std::vector<FaultEvent> events;
  events.reserve(doc.asArray().size());
  for (const json::Value& e : doc.asArray()) {
    GRAPHENE_CHECK(e.isObject(), "each fault-log entry must be a JSON object");
    validateKeys(e, "fault-log entry",
                 {{"kind", KeyKind::String},
                  {"superstep", KeyKind::Number},
                  {"target", KeyKind::String},
                  {"element", KeyKind::Number},
                  {"bit", KeyKind::Number},
                  {"cycles", KeyKind::Number},
                  {"detail", KeyKind::String}});
    GRAPHENE_CHECK(e.contains("kind"),
                   "fault-log entry needs a 'kind' key");
    FaultEvent ev;
    ev.kind = e.at("kind").asString();
    ev.superstep =
        static_cast<std::size_t>(e.getOr("superstep", std::int64_t(0)));
    ev.target = e.getOr("target", std::string());
    ev.element =
        static_cast<std::size_t>(e.getOr("element", std::int64_t(0)));
    ev.bit = static_cast<int>(e.getOr("bit", std::int64_t(-1)));
    ev.cycles = e.getOr("cycles", 0.0);
    ev.detail = e.getOr("detail", std::string());
    events.push_back(std::move(ev));
  }
  return events;
}

std::string formatFaultEvents(const std::vector<FaultEvent>& events) {
  std::ostringstream oss;
  for (const FaultEvent& ev : events) {
    oss << "[superstep " << ev.superstep << "] " << ev.kind << " on "
        << ev.target;
    if (ev.bit >= 0) {
      oss << " (element " << ev.element << ", bit " << ev.bit << ")";
    }
    if (ev.cycles > 0) oss << " (+" << ev.cycles << " cycles)";
    if (!ev.detail.empty()) oss << " — " << ev.detail;
    oss << "\n";
  }
  return oss.str();
}

}  // namespace graphene::ipu
