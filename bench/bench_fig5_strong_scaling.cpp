// Figure 5: strong scaling of one SpMV over 1..16 IPUs at a fixed problem
// size, total speedup vs compute-only speedup vs ideal.
//
// The paper uses a 200^3 Poisson grid (58 M nnz) on up to 16 full IPUs
// (1,472 tiles each); this host simulates a scaled-down pod (tiles/IPU and
// grid sizes printed below). Two problem sizes bracket the strong-scaling
// story of §VI-B:
//
//   large   compute per tile dominates; speedup tracks the ideal line and
//           the gap to it is the growing surface/volume halo share
//   small   so few rows per tile that IPU-Link latency and the serialised
//           link lanes dominate — the curve flattens out (the classic
//           strong-scaling falloff the pipelined solvers exist to defer)
//
// Each point reports the inter-IPU payload so the falloff is attributable:
// the large problem amortises its link bytes over compute, the small one
// cannot. Emits a schemaVersion-2 JSON report (rows tagged figure=fig5)
// that BENCH_SCALING.json snapshots and tools/check_bench_regression.py
// gates on; `--json <path>` writes it (tables stay on stdout).
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace graphene;

namespace {

struct Point {
  std::size_t ipus;
  double totalSec = 0;
  double computeSec = 0;
  double totalCycles = 0;
  double interCycles = 0;
  std::size_t interIpuBytes = 0;
  std::size_t interIpuMessages = 0;
};

Point measure(const matrix::GeneratedMatrix& g, std::size_t tilesPerIpu,
              std::size_t ipus) {
  Point pt;
  pt.ipus = ipus;
  for (int withExchange = 0; withExchange < 2; ++withExchange) {
    const ipu::Topology topo =
        ipus == 1 ? ipu::Topology::singleIpu(tilesPerIpu)
                  : ipu::Topology::pod(ipus, tilesPerIpu);
    bench::DistSystem s = bench::makeSystem(g, topo);
    dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
    dsl::Tensor y = s.A->makeVector(dsl::DType::Float32, "y");
    s.A->spmv(y, x, /*exchange=*/withExchange == 1);
    auto xh = bench::randomRhs(g.matrix.rows());
    auto prof = bench::runProgram(s, s.ctx->program(), xh, x);
    double sec = topo.target().secondsFromCycles(prof.totalCycles());
    if (withExchange) {
      pt.totalSec = sec;
      pt.totalCycles = prof.totalCycles();
      pt.interCycles = prof.exchangeInterCycles;
      pt.interIpuBytes = prof.interIpuBytes;
      pt.interIpuMessages = prof.interIpuMessages;
    } else {
      pt.computeSec = sec;
    }
  }
  return pt;
}

std::vector<Point> sweep(const matrix::GeneratedMatrix& g,
                         std::size_t tilesPerIpu, const char* name,
                         bench::BenchReport& report) {
  const std::size_t ipuCounts[] = {1, 2, 4, 8, 16};
  std::vector<Point> points;
  for (std::size_t n : ipuCounts) points.push_back(measure(g, tilesPerIpu, n));

  TextTable t({"IPUs", "total time", "speedup", "compute speedup", "ideal",
               "inter-IPU bytes", "link transfers"});
  for (const Point& p : points) {
    t.addRow({std::to_string(p.ipus), formatTime(p.totalSec),
              formatSig(points[0].totalSec / p.totalSec, 3),
              formatSig(points[0].computeSec / p.computeSec, 3),
              std::to_string(p.ipus),
              formatBytes(static_cast<double>(p.interIpuBytes)),
              std::to_string(p.interIpuMessages)});
    json::Object row;
    row["figure"] = "fig5";
    row["problem"] = name;
    row["ipus"] = p.ipus;
    row["tiles"] = p.ipus * tilesPerIpu;
    row["rows"] = g.matrix.rows();
    row["nnz"] = g.matrix.nnz();
    row["totalCycles"] = p.totalCycles;
    row["interIpuCycles"] = p.interCycles;
    row["interIpuBytes"] = p.interIpuBytes;
    row["interIpuMessages"] = p.interIpuMessages;
    row["speedup"] = points[0].totalSec / p.totalSec;
    report.addResult(std::move(row));
  }
  std::printf("%s problem: %zu rows, %zu nnz\n%s\n", name, g.matrix.rows(),
              g.matrix.nnz(), t.render().c_str());
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  bench::printHeader("Figure 5 — SpMV strong scaling on a pod",
                     "near-ideal strong scaling for the large problem, "
                     "IPU-Link-bound falloff for the small one (paper "
                     "Fig. 5)");

  const std::size_t tilesPerIpu = 64;  // scaled-down Mk2 (real: 1472)
  const std::size_t largeGrid = 64;    // scaled-down 200^3
  const std::size_t smallGrid = 16;    // rows/tile at 16 IPUs: just 4

  std::printf("%zu tiles per simulated IPU; pods of 1, 2, 4, 8, 16 IPUs\n\n",
              tilesPerIpu);

  bench::BenchMeta meta = bench::parseBenchMeta(argc, argv);
  meta.tiles = 0;  // varies per row
  meta.hostThreads = 1;
  bench::BenchReport report("scaling", meta);
  report.setField("tilesPerIpu", tilesPerIpu);

  auto large = matrix::poisson3d7(largeGrid, largeGrid, largeGrid);
  auto small = matrix::poisson3d7(smallGrid, smallGrid, smallGrid);
  std::vector<Point> lp = sweep(large, tilesPerIpu, "large", report);
  std::vector<Point> sp = sweep(small, tilesPerIpu, "small", report);

  const double largeSpeedup = lp[0].totalSec / lp.back().totalSec;
  const double largeCompute = lp[0].computeSec / lp.back().computeSec;
  const double smallSpeedup = sp[0].totalSec / sp.back().totalSec;
  std::printf("check: large-problem compute speedup at 16 IPUs within 15%% "
              "of ideal: %s (%.1fx)\n",
              largeCompute > 0.85 * 16 ? "PASS" : "FAIL", largeCompute);
  // The two-level model charges real IPU-Link latency and serialised lanes,
  // so the scaled-down problem cannot sit on the ideal line the way the
  // paper's 1,472-tile chips do; half of ideal at 16 IPUs is the shape the
  // figure asserts (speedup keeps growing through every pod size).
  std::printf("check: large-problem total speedup > 50%% of ideal: %s "
              "(%.1fx)\n",
              largeSpeedup > 0.5 * 16 ? "PASS" : "FAIL", largeSpeedup);
  std::printf("check: small problem falls off (total speedup at 16 IPUs "
              "below half the large problem's): %s (%.1fx vs %.1fx)\n",
              smallSpeedup < 0.5 * largeSpeedup ? "PASS" : "FAIL",
              smallSpeedup, largeSpeedup);
  std::printf("check: inter-IPU payload grows with the pod (16 vs 2 IPUs): "
              "%s (%zu vs %zu bytes)\n",
              lp.back().interIpuBytes > lp[1].interIpuBytes ? "PASS" : "FAIL",
              lp.back().interIpuBytes, lp[1].interIpuBytes);

  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      std::ofstream out(argv[i + 1], std::ios::binary);
      out << report.dump() << "\n";
      std::printf("wrote %s\n", argv[i + 1]);
    }
  }
  return 0;
}
