// Superstep watchdog and tile-health bookkeeping.
//
// Hard faults cannot be detected by value inspection: a dead tile produces
// no values at all — it simply never reaches the BSP barrier. What a real
// fabric observes is *time*: the slowest tile sets the superstep duration,
// and a tile that exceeds any plausible cycle budget is hung. HealthMonitor
// implements that observation for the simulator. The engine reports every
// (superstep, tile, cycles) sample to observeCompute() from its serial
// reduction pass — the same pass that keeps profiles bit-identical at any
// host thread count — so watchdog trips and dead-tile confirmations are
// deterministic.
//
// A tile is confirmed dead after `tripsToConfirm` consecutive budget
// overruns (one slow superstep is a straggler; several in a row on the same
// tile is a hang). On confirmation the monitor logs a "health:tile-dead"
// fault event and, when abortOnConfirmedDead is set, arms an abort: the
// engine finishes committing the superstep (profile, trace, simulated
// clock), then throws HardFaultError so the solver layer can blacklist the
// tile, repartition, and resume from checkpointed state.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "ipu/profile.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace graphene::ipu {

/// Thrown by the engine when the health monitor confirms dead tiles and is
/// configured to abort. Carries the (sorted) list of confirmed-dead tiles —
/// and, when the monitor escalated tile deaths to a whole-chip verdict, the
/// (sorted) dead chips — so the catcher can blacklist tiles or shrink the
/// topology.
class HardFaultError : public Error {
 public:
  HardFaultError(const std::string& message, std::vector<std::size_t> tiles,
                 std::vector<std::size_t> ipus = {})
      : Error(message),
        deadTiles_(std::move(tiles)),
        deadIpus_(std::move(ipus)) {}

  const std::vector<std::size_t>& deadTiles() const { return deadTiles_; }
  const std::vector<std::size_t>& deadIpus() const { return deadIpus_; }

 private:
  std::vector<std::size_t> deadTiles_;
  std::vector<std::size_t> deadIpus_;
};

class HealthMonitor {
 public:
  struct Options {
    /// Compute cycles a single tile may spend in one superstep before the
    /// watchdog trips. Must sit above every legitimate superstep (including
    /// injected transient stalls) and below the dead-tile charge.
    double computeCycleBudget = 5e7;
    /// Consecutive trips on the same tile before it is confirmed dead.
    std::size_t tripsToConfirm = 2;
    /// Arm an engine abort (HardFaultError) when a tile is confirmed dead.
    /// Leave false when no recovery is possible — the run then completes
    /// and the caller reads the health report instead.
    bool abortOnConfirmedDead = true;
    /// Chip-level escalation: when > 0, tiles aggregate into chips of this
    /// many tiles, and a chip whose confirmed-dead tile count reaches
    /// ceil(ipuDeadFraction * tilesPerIpu) is declared ipu-dead (a
    /// "health:ipu-dead" event + the deadIpus() verdict the recovery layer
    /// turns into a topology shrink). 0 = per-tile verdicts only.
    std::size_t tilesPerIpu = 0;
    /// Fraction of a chip's tiles that must be confirmed dead before the
    /// chip itself is declared dead. In (0, 1].
    double ipuDeadFraction = 0.5;
  };

  HealthMonitor() = default;
  explicit HealthMonitor(Options options) : options_(options) {}

  const Options& options() const { return options_; }

  /// One (superstep, tile, cycles) sample from the engine's serial
  /// reduction pass. Logs watchdog-trip / health:tile-dead events into
  /// `profile` and updates the resilience.* counters.
  void observeCompute(std::size_t superstep, std::size_t tile, double cycles,
                      Profile& profile);

  /// Tiles confirmed dead so far, ascending.
  const std::vector<std::size_t>& deadTiles() const { return deadTiles_; }

  /// Chips declared dead by the tile-fraction escalation, ascending. Empty
  /// unless Options::tilesPerIpu enabled chip aggregation.
  const std::vector<std::size_t>& deadIpus() const { return deadIpus_; }

  /// True once a confirmation armed an abort; the engine throws after the
  /// superstep is committed. clearAbort() disarms (the throw consumed it).
  bool abortPending() const { return abortPending_; }
  void clearAbort() { abortPending_ = false; }

  /// Total watchdog trips observed (all tiles).
  std::size_t trips() const { return trips_; }

  /// Machine-readable health report:
  ///   {"computeCycleBudget": ..., "tripsToConfirm": ..., "trips": N,
  ///    "deadTiles": [...], "tiles": [{"tile", "trips", "dead",
  ///                                   "lastTripSuperstep"}, ...]}
  json::Value reportJson() const;

  /// Forgets all observations (fresh run on the same monitor).
  void reset();

 private:
  struct TileHealth {
    std::size_t trips = 0;          // consecutive budget overruns
    std::size_t totalTrips = 0;
    std::size_t lastTripSuperstep = SIZE_MAX;
    bool dead = false;
  };

  Options options_;
  std::map<std::size_t, TileHealth> tiles_;  // ordered: deterministic report
  std::vector<std::size_t> deadTiles_;
  std::vector<std::size_t> deadIpus_;
  std::size_t trips_ = 0;
  bool abortPending_ = false;
};

}  // namespace graphene::ipu
