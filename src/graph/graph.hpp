// The dataflow graph: tensor variables, codelets, and compute sets, plus the
// per-tile SRAM ledger that constrains them. The Engine executes Programs
// against a Graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/codelet.hpp"
#include "graph/program.hpp"
#include "graph/tensor.hpp"
#include "ipu/cost_model.hpp"
#include "ipu/memory.hpp"
#include "ipu/target.hpp"

namespace graphene::graph {

class Graph {
 public:
  explicit Graph(ipu::IpuTarget target)
      : target_(target), ledger_(target) {}

  const ipu::IpuTarget& target() const { return target_; }

  /// The tile hosting control state: reduction gathers/finals, the
  /// authoritative replica of replicated scalars (loop conditions,
  /// convergence flags) and their host-side reads. Defaults to tile 0. A
  /// resilience layer that blacklists tiles must point it at a surviving
  /// tile *before* programs are emitted — control placed on a dead tile
  /// would freeze every loop condition at its last value.
  std::size_t controlTile() const { return controlTile_; }
  void setControlTile(std::size_t tile) {
    GRAPHENE_CHECK(tile < target_.totalTiles(), "control tile ", tile,
                   " out of range for ", target_.totalTiles(), " tiles");
    controlTile_ = tile;
  }

  ipu::CostModel& costModel() { return costModel_; }
  const ipu::CostModel& costModel() const { return costModel_; }

  /// Creates a tensor variable; reserves its SRAM on every mapped tile.
  TensorId addTensor(TensorInfo info);

  const TensorInfo& tensor(TensorId id) const;
  std::size_t numTensors() const { return tensors_.size(); }

  CodeletId addCodelet(Codelet codelet);
  const Codelet& codelet(CodeletId id) const;
  std::size_t numCodelets() const { return codelets_.size(); }

  ComputeSetId addComputeSet(std::string category);
  void addVertex(ComputeSetId cs, Vertex v);
  /// Registers a counter ticked into Profile::metrics on every execution of
  /// `cs` (e.g. SpMV FLOPs). Cheap: the engine walks an almost-always-empty
  /// list per superstep.
  void addComputeSetMetric(ComputeSetId cs, std::string name, double value);
  const ComputeSet& computeSet(ComputeSetId id) const;
  std::size_t numComputeSets() const { return computeSets_.size(); }

  const ipu::TileMemoryLedger& ledger() const { return ledger_; }

 private:
  ipu::IpuTarget target_;
  std::size_t controlTile_ = 0;
  ipu::CostModel costModel_;
  ipu::TileMemoryLedger ledger_;
  std::vector<TensorInfo> tensors_;
  std::vector<Codelet> codelets_;
  std::vector<ComputeSet> computeSets_;
};

}  // namespace graphene::graph
