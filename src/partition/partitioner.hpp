// Pod-aware row→tile partitioning behind one object.
//
// `Partitioner` is the redesigned entry point that replaces the old
// `partitionAuto` free-function overloads: it carries the machine topology,
// the tile blacklist and the strategy in one value, and produces either a
// raw row→tile map or the full §IV halo layout.
//
// On a pod the assignment is hierarchical, mirroring the machine's two-level
// interconnect: rows are first split across IPUs minimizing the cut surface
// (cheap on-chip fabric inside a subdomain, expensive IPU-Links across), and
// each IPU's rows are then tiled across its surviving tiles. For grid
// matrices both stages use nested block-grid decomposition; unstructured
// matrices (or pods with dead tiles) use BFS-grown connected subdomains,
// weighted by each IPU's surviving tile count.
//
//   partition::Partitioner p(Topology::pod(4, 16));
//   p.setBlacklist({7, 21});
//   auto layout = p.layout(g);          // or p.map(g) for the raw map
#pragma once

#include <cstddef>
#include <vector>

#include "ipu/topology.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "partition/halo.hpp"

namespace graphene::partition {

class Partitioner {
 public:
  enum class Strategy {
    Auto,    ///< block-grid when geometry is available, BFS otherwise
    Grid,    ///< require geometry, always block-grid
    Bfs,     ///< always BFS-grown connected chunks
    Linear,  ///< contiguous row blocks (baseline / debugging)
  };

  explicit Partitioner(ipu::Topology topology,
                       Strategy strategy = Strategy::Auto);

  /// Rows are never placed on these global tile ids (hard-fault remap).
  Partitioner& setBlacklist(std::vector<std::size_t> deadTiles);

  const ipu::Topology& topology() const { return topology_; }
  const std::vector<std::size_t>& blacklist() const { return blacklist_; }
  Strategy strategy() const { return strategy_; }

  /// Row → global tile id. Global tile ids are IPU-major
  /// (tile = ipu * tilesPerIpu + localTile), matching IpuTarget::ipuOfTile.
  std::vector<std::size_t> map(const matrix::GeneratedMatrix& g) const;

  /// map() + §IV halo layout (regions, blockwise exchange plan) in one step.
  DistributedLayout layout(const matrix::GeneratedMatrix& g) const;

 private:
  ipu::Topology topology_;
  Strategy strategy_;
  std::vector<std::size_t> blacklist_;
};

/// Structural entries (i,j), i != j, whose endpoints land on different IPUs
/// under `rowToTile` — the cut surface the pod-aware split minimizes, and
/// the direct driver of link traffic per SpMV.
std::size_t interIpuCut(const matrix::CsrMatrix& a,
                        const std::vector<std::size_t>& rowToTile,
                        const ipu::Topology& topology);

}  // namespace graphene::partition
