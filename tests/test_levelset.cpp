// Tests for Level-Set Scheduling (§V-A).
#include <gtest/gtest.h>

#include <set>

#include "levelset/levelset.hpp"
#include "matrix/generators.hpp"

using namespace graphene;
using namespace graphene::levelset;
using matrix::CsrMatrix;
using matrix::Triplet;

TEST(LevelSet, DiagonalMatrixIsOneLevel) {
  auto a = CsrMatrix::fromTriplets(
      4, 4, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}, {3, 3, 1.0}});
  auto s = buildForwardLevels(a);
  EXPECT_EQ(s.numLevels(), 1u);
  EXPECT_EQ(s.maxLevelSize(), 4u);
  EXPECT_DOUBLE_EQ(s.avgParallelism(), 4.0);
}

TEST(LevelSet, BidiagonalChainIsFullySequential) {
  // Row i depends on i-1: one row per level.
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < 6; ++i) {
    trips.push_back({i, i, 2.0});
    if (i > 0) trips.push_back({i, i - 1, -1.0});
  }
  auto a = CsrMatrix::fromTriplets(6, 6, trips);
  auto s = buildForwardLevels(a);
  EXPECT_EQ(s.numLevels(), 6u);
  for (std::size_t l = 0; l < 6; ++l) {
    EXPECT_EQ(s.order[l], static_cast<std::int32_t>(l));
  }
  // Backward direction: same chain read upward.
  auto sb = buildBackwardLevels(a.transposed());
  EXPECT_EQ(sb.numLevels(), 6u);
  EXPECT_EQ(sb.order[0], 5);
}

TEST(LevelSet, KnownSmallDag) {
  // Dependencies (lower entries): row2<-row0, row3<-{row1,row2}, row4<-row0.
  // Levels: {0,1}, {2,4}, {3}.
  std::vector<Triplet> trips = {{0, 0, 1}, {1, 1, 1}, {2, 0, 1}, {2, 2, 1},
                                {3, 1, 1}, {3, 2, 1}, {3, 3, 1}, {4, 0, 1},
                                {4, 4, 1}};
  auto a = CsrMatrix::fromTriplets(5, 5, trips);
  auto s = buildForwardLevels(a);
  ASSERT_EQ(s.numLevels(), 3u);
  EXPECT_EQ(std::set<std::int32_t>(s.order.begin() + s.levelPtr[0],
                                   s.order.begin() + s.levelPtr[1]),
            (std::set<std::int32_t>{0, 1}));
  EXPECT_EQ(std::set<std::int32_t>(s.order.begin() + s.levelPtr[1],
                                   s.order.begin() + s.levelPtr[2]),
            (std::set<std::int32_t>{2, 4}));
  EXPECT_EQ(std::set<std::int32_t>(s.order.begin() + s.levelPtr[2],
                                   s.order.begin() + s.levelPtr[3]),
            (std::set<std::int32_t>{3}));
}

TEST(LevelSet, HaloReferencesAreIgnored) {
  // Column indices >= n (halo cells in local numbering) must not create
  // dependencies — the block-local scheduling the paper uses.
  std::vector<std::size_t> rowPtr = {0, 2, 4};
  std::vector<std::int32_t> col = {0, 5, 1, 7};  // 5 and 7 are halo
  auto s = buildLevels(rowPtr, col, 2, /*lower=*/true);
  EXPECT_EQ(s.numLevels(), 1u);
}

class LevelSetProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(LevelSetProperties, NoIntraLevelDependencies) {
  auto g = matrix::makeBenchmarkMatrix(GetParam(), 3000);
  const CsrMatrix& a = g.matrix;
  auto s = buildForwardLevels(a);
  // Every row appears exactly once.
  std::vector<int> seen(a.rows(), 0);
  for (std::int32_t r : s.order) ++seen[static_cast<std::size_t>(r)];
  for (int c : seen) ASSERT_EQ(c, 1);

  std::vector<std::size_t> levelOf(a.rows());
  for (std::size_t l = 0; l + 1 < s.levelPtr.size(); ++l) {
    for (std::int32_t i = s.levelPtr[l]; i < s.levelPtr[l + 1]; ++i) {
      levelOf[static_cast<std::size_t>(s.order[static_cast<std::size_t>(i)])] = l;
    }
  }
  // A dependency (lower-triangular entry) must point to a strictly earlier
  // level; rows in one level are then independent.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k) {
      std::size_t c = static_cast<std::size_t>(a.colIdx()[k]);
      if (c < r) ASSERT_LT(levelOf[c], levelOf[r]);
    }
  }
}

TEST_P(LevelSetProperties, ParallelismSaturatesSixWorkers) {
  // §V-A: "the method can often fully utilize all six worker threads per
  // tile" — average level width on realistic matrices is comfortably > 6.
  auto g = matrix::makeBenchmarkMatrix(GetParam(), 3000);
  auto s = buildForwardLevels(g.matrix);
  EXPECT_GT(s.avgParallelism(), 6.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(BenchmarkMatrices, LevelSetProperties,
                         ::testing::Values("g3_circuit", "af_shell7",
                                           "geo_1438", "hook_1498"));

TEST(LevelSet, ForwardSubstitutionByLevelsMatchesSequential) {
  // Solving L y = b level-by-level must give the sequential result exactly.
  auto g = matrix::poisson2d5(12, 12);
  const CsrMatrix& a = g.matrix;
  const std::size_t n = a.rows();
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = 1.0 + 0.01 * static_cast<double>(i);

  // Sequential forward solve on (D + L) part.
  std::vector<double> ySeq(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = b[r];
    double diag = 0;
    for (std::size_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k) {
      std::size_t c = static_cast<std::size_t>(a.colIdx()[k]);
      if (c < r) acc -= a.values()[k] * ySeq[c];
      if (c == r) diag = a.values()[k];
    }
    ySeq[r] = acc / diag;
  }

  // Level-scheduled solve (any order within a level).
  auto s = buildForwardLevels(a);
  std::vector<double> yLvl(n, 0.0);
  for (std::size_t l = 0; l + 1 < s.levelPtr.size(); ++l) {
    for (std::int32_t i = s.levelPtr[l]; i < s.levelPtr[l + 1]; ++i) {
      std::size_t r = static_cast<std::size_t>(s.order[static_cast<std::size_t>(i)]);
      double acc = b[r];
      double diag = 0;
      for (std::size_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k) {
        std::size_t c = static_cast<std::size_t>(a.colIdx()[k]);
        if (c < r) acc -= a.values()[k] * yLvl[c];
        if (c == r) diag = a.values()[k];
      }
      yLvl[r] = acc / diag;
    }
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(yLvl[i], ySeq[i]);
}
