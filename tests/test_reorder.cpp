// Tests for RCM reordering and the spectral estimators.
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/generators.hpp"
#include "matrix/reorder.hpp"
#include "support/rng.hpp"

using namespace graphene;
using namespace graphene::matrix;

TEST(Rcm, PermutationIsValid) {
  auto g = g3CircuitLike(2000);
  auto perm = reverseCuthillMcKee(g.matrix);
  std::vector<int> seen(perm.size(), 0);
  for (std::size_t p : perm) {
    ASSERT_LT(p, perm.size());
    ++seen[p];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Rcm, ReducesBandwidthOfShuffledMatrix) {
  // Shuffle a banded matrix, then RCM must recover a small bandwidth.
  auto g = poisson2d5(30, 30);
  Rng rng(3);
  std::vector<std::size_t> shuffle(g.matrix.rows());
  for (std::size_t i = 0; i < shuffle.size(); ++i) shuffle[i] = i;
  for (std::size_t i = shuffle.size(); i-- > 1;) {
    std::swap(shuffle[i], shuffle[rng.nextBelow(i + 1)]);
  }
  CsrMatrix shuffled = g.matrix.permuted(shuffle);
  EXPECT_GT(shuffled.bandwidth(), 200u);  // destroyed locality

  auto perm = reverseCuthillMcKee(shuffled);
  CsrMatrix restored = shuffled.permuted(perm);
  EXPECT_LT(restored.bandwidth(), 70u);  // near the grid's natural ~30
  EXPECT_EQ(restored.nnz(), g.matrix.nnz());
  EXPECT_TRUE(restored.isSymmetric(1e-12));
}

TEST(Rcm, HandlesDisconnectedComponents) {
  // Two independent 2x2 blocks plus an isolated diagonal row.
  auto a = CsrMatrix::fromTriplets(
      5, 5,
      {{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0},
       {2, 2, 1.0},
       {3, 3, 2.0}, {3, 4, -1.0}, {4, 3, -1.0}, {4, 4, 2.0}});
  auto perm = reverseCuthillMcKee(a);
  auto b = a.permuted(perm);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_LE(b.bandwidth(), 1u);
}

TEST(Spectral, PowerIterationOnKnownSpectrum) {
  // diag(1, 2, ..., 10): eigenvalues are exactly the entries.
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < 10; ++i) {
    trips.push_back({i, i, static_cast<double>(i + 1)});
  }
  auto a = CsrMatrix::fromTriplets(10, 10, trips);
  EXPECT_NEAR(estimateLargestEigenvalue(a, 200), 10.0, 1e-3);
  EXPECT_NEAR(estimateSmallestEigenvalue(a, 40), 1.0, 1e-3);
  EXPECT_NEAR(estimateConditionNumber(a), 10.0, 0.1);
}

TEST(Spectral, PoissonConditionMatchesTheory) {
  // 2D 5-point Poisson with Dirichlet boundaries: eigenvalues are
  // 4 − 2cos(iπh) − 2cos(jπh); λmax ≈ 8, λmin = 4 − 4cos(πh) ≈ 2π²h².
  const std::size_t n = 20;
  auto g = poisson2d5(n, n);
  double hi = estimateLargestEigenvalue(g.matrix, 300);
  double lo = estimateSmallestEigenvalue(g.matrix, 40);
  const double h = 1.0 / static_cast<double>(n + 1);
  const double pi = 3.14159265358979;
  EXPECT_NEAR(hi, 8.0, 0.5);
  EXPECT_NEAR(lo, 2.0 * pi * pi * h * h, lo * 0.1);
}

TEST(Spectral, ShiftScaleLowersCondition) {
  // The generators' shiftScale knob must reduce the condition number
  // roughly proportionally (DESIGN.md §1 size-matched conditioning).
  auto hard = geoLike(1500, 3, 1.0);
  auto easy = geoLike(1500, 3, 300.0);
  double kHard = estimateConditionNumber(hard.matrix);
  double kEasy = estimateConditionNumber(easy.matrix);
  EXPECT_GT(kHard, 20.0 * kEasy);
}
