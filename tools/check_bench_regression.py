#!/usr/bin/env python3
"""Perf gate: fail CI when the simulator got much slower than the record.

Compares one or more fresh bench_simspeed JSON reports against the committed
baseline (BENCH_SIMSPEED.json at the repo root) and exits 1 if any matching
row regressed by more than the threshold factor in itersPerSec.

Usage:
    check_bench_regression.py [--baseline BENCH_SIMSPEED.json]
                              [--threshold 2.0] fresh1.json [fresh2.json ...]

Rows are matched on (solver, hostThreads). When several fresh reports are
given, the BEST rate per row is used — CI runners are noisy and slow outliers
are common, so the gate asks "can the simulator still reach at least
baseline/threshold?" rather than "did this one run hit it?". Rows marked
`saturated` (thread count above the machine's cores) are skipped: an
oversubscribed ladder measures the scheduler, not the simulator. The
threshold is deliberately loose (2x): this is a ratchet against large
accidental regressions — a dropped fast path, an accidentally-disabled
cache — not a microbenchmark tracker.
"""

import argparse
import json
import sys
from pathlib import Path


def load_rows(path):
    """Returns {(solver, hostThreads): row} for non-saturated result rows."""
    with open(path) as f:
        report = json.load(f)
    rows = {}
    for row in report.get("results", []):
        if row.get("saturated"):
            continue
        rows[(row["solver"], row["hostThreads"])] = row
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="+", help="fresh bench_simspeed JSON files")
    ap.add_argument(
        "--baseline",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_SIMSPEED.json"),
        help="committed baseline report (default: repo root)")
    ap.add_argument(
        "--threshold", type=float, default=2.0,
        help="max allowed slowdown factor vs baseline (default: 2.0)")
    args = ap.parse_args()

    baseline = load_rows(args.baseline)
    if not baseline:
        print(f"error: no comparable rows in baseline {args.baseline}")
        return 1

    # Best observed rate per row across all fresh reports.
    best = {}
    for path in args.fresh:
        for key, row in load_rows(path).items():
            rate = row["itersPerSec"]
            if key not in best or rate > best[key]:
                best[key] = rate

    failed = False
    for key, base_row in sorted(baseline.items()):
        solver, threads = key
        base = base_row["itersPerSec"]
        floor = base / args.threshold
        got = best.get(key)
        if got is None:
            print(f"MISSING  {solver} @ {threads} threads: "
                  f"row absent from fresh reports (baseline {base:.0f}/s)")
            failed = True
            continue
        verdict = "ok" if got >= floor else "REGRESSED"
        print(f"{verdict:<10}{solver} @ {threads} threads: "
              f"{got:.0f}/s vs baseline {base:.0f}/s "
              f"(floor {floor:.0f}/s = baseline/{args.threshold:g})")
        if got < floor:
            failed = True

    if failed:
        print(f"\nperf gate FAILED: simulator slower than "
              f"{args.threshold:g}x off the committed baseline "
              f"({args.baseline}). If the slowdown is intentional, "
              f"regenerate BENCH_SIMSPEED.json and commit it.")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
