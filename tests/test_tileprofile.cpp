// Tile-level profiler.
//
// Covers the tentpole guarantees: per-tile critical-path attribution sums
// back to Profile::computeCycles with exact equality per category; the
// tile×tile traffic matrix's row/column/grand totals equal
// Profile::exchangedBytes; reports are bit-identical between 1 and 8 host
// threads; profiling disabled means zero extra compute-set emissions and
// unchanged cycle totals (A/B); JSON round-trips; the SRAM snapshot matches
// the memory ledger tensor-by-tensor; and the §IV halo reordering moves the
// traffic-locality score in the direction graphene-prof's diff gate checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "graph/engine.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/session.hpp"
#include "solver/solvers.hpp"
#include "support/tile_profile.hpp"

using namespace graphene;
using namespace graphene::solver;
using dsl::Context;
using dsl::Tensor;
using support::TileProfile;

namespace {

const char* kCgJson = R"({
  "type": "cg", "maxIterations": 200, "tolerance": 1e-6
})";

/// One emitted CG solve whose program can be re-run on fresh engines —
/// the same fixture shape the trace tests use.
struct ProfiledSetup {
  std::unique_ptr<Context> ctx;
  std::unique_ptr<DistMatrix> A;
  std::unique_ptr<Solver> solver;
  std::optional<Tensor> x, b;
  std::vector<double> rhs;
  std::size_t tiles;

  explicit ProfiledSetup(std::size_t tiles = 4) : tiles(tiles) {
    auto g = matrix::poisson2d5(8, 8);
    ctx = std::make_unique<Context>(ipu::IpuTarget::testTarget(tiles));
    auto layout =
        partition::Partitioner(ipu::Topology::singleIpu(tiles)).layout(g);
    A = std::make_unique<DistMatrix>(g.matrix, std::move(layout));
    x.emplace(A->makeVector(DType::Float32, "x"));
    b.emplace(A->makeVector(DType::Float32, "b"));
    solver = makeSolverFromString(kCgJson);
    solver->apply(*A, *x, *b);
    rhs.assign(64, 1.0);
  }

  /// Runs the program on a fresh engine; attaches `profile` when non-null.
  std::unique_ptr<graph::Engine> run(TileProfile* profile,
                                     std::size_t hostThreads = 1) {
    solver->clearHistory();
    auto engine = std::make_unique<graph::Engine>(ctx->graph(), hostThreads);
    if (profile != nullptr) engine->setTileProfile(profile);
    A->upload(*engine);
    A->writeVector(*engine, *b, rhs);
    engine->run(ctx->program());
    return engine;
  }
};

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

}  // namespace

// Each compute superstep's critical path (max tile cycles) is charged to
// the tile that set it, so per-category tile sums reproduce the engine's
// Profile::computeCycles entries with *exact* double equality — the cycle
// costs are dyadic, and both sides add the same values.
TEST(TileProfileAttribution, CriticalCyclesReproduceProfileExactly) {
  ProfiledSetup setup;
  TileProfile tp;
  auto engine = setup.run(&tp);
  const ipu::Profile& prof = engine->profile();

  ASSERT_FALSE(prof.computeCycles.empty());
  ASSERT_EQ(tp.categories.size(), prof.computeCycles.size());
  for (const auto& [cat, cycles] : prof.computeCycles) {
    ASSERT_TRUE(tp.categories.count(cat)) << cat;
    const auto& plane = tp.categories.at(cat);
    EXPECT_EQ(sum(plane.criticalCycles), cycles) << cat;      // exact ==
    EXPECT_EQ(tp.categoryCycles(cat), cycles) << cat;
    EXPECT_GT(plane.supersteps, 0u) << cat;

    // Per tile: busy + barrier idle is the sum of the critical paths of the
    // supersteps this tile took part in — a subset of the category's
    // supersteps, so bounded by the category total. Worker busy never
    // exceeds workers × busy, idle is non-negative.
    for (std::size_t t = 0; t < tp.numTiles; ++t) {
      EXPECT_GE(plane.barrierIdleCycles[t], 0.0) << cat << " tile " << t;
      EXPECT_LE(plane.busyCycles[t] + plane.barrierIdleCycles[t], cycles)
          << cat << " tile " << t;
      EXPECT_LE(plane.workerBusyCycles[t],
                static_cast<double>(tp.workersPerTile) * plane.busyCycles[t] +
                    1e-9)
          << cat << " tile " << t;
    }
  }

  EXPECT_EQ(tp.totalComputeCycles(), prof.totalComputeCycles());
  EXPECT_EQ(tp.exchangeCycles, prof.exchangeCycles);
  EXPECT_EQ(tp.syncCycles, prof.syncCycles);
  EXPECT_EQ(tp.totalCycles(), prof.totalCycles());
  EXPECT_EQ(tp.computeSupersteps, prof.computeSupersteps);
  EXPECT_EQ(tp.exchangeSupersteps, prof.exchangeSupersteps);
  EXPECT_EQ(tp.numTiles, setup.tiles);
  EXPECT_EQ(tp.workersPerTile, setup.ctx->graph().target().workersPerTile);
}

// The traffic matrix splits each transfer's payload integer-exactly over
// its remote destinations, so row sums (pushed), column sums (pulled) and
// the grand total all reconcile with Profile::exchangedBytes.
TEST(TileProfileTraffic, MatrixSumsEqualExchangedBytes) {
  ProfiledSetup setup;
  TileProfile tp;
  auto engine = setup.run(&tp);
  const ipu::Profile& prof = engine->profile();

  ASSERT_FALSE(tp.traffic.empty());
  std::uint64_t rows = 0, cols = 0, cells = 0, msgs = 0;
  for (std::size_t t = 0; t < tp.numTiles; ++t) {
    rows += tp.traffic.rowSum(t);
    cols += tp.traffic.colSum(t);
    // A tile never messages itself: local copies are free in the model.
    EXPECT_EQ(tp.traffic.bytes(t, t), 0u);
    EXPECT_EQ(tp.traffic.messages(t, t), 0u);
    for (std::size_t d = 0; d < tp.numTiles; ++d) {
      cells += tp.traffic.bytes(t, d);
      msgs += tp.traffic.messages(t, d);
    }
  }
  EXPECT_EQ(rows, tp.traffic.totalBytes());
  EXPECT_EQ(cols, tp.traffic.totalBytes());
  EXPECT_EQ(cells, tp.traffic.totalBytes());
  EXPECT_EQ(msgs, tp.traffic.totalMessages());
  EXPECT_EQ(tp.traffic.totalBytes(),
            static_cast<std::uint64_t>(prof.exchangedBytes));
  // Blockwise halo plans broadcast: fewer send instructions than messages.
  EXPECT_LE(tp.traffic.sendInstructions(), tp.traffic.totalMessages());
  EXPECT_GT(tp.traffic.sendInstructions(), 0u);
}

// All recording happens in the engine's serial reduction pass, so the
// serialised report is byte-identical whether 1 or 8 host threads simulate
// the tiles.
TEST(TileProfileDeterminism, ReportBitIdenticalAcrossHostThreads) {
  ProfiledSetup setup;
  TileProfile serial, parallel;
  setup.run(&serial, 1);
  setup.run(&parallel, 8);

  const std::string a = support::tileProfileToJson(serial).dump(2);
  const std::string b = support::tileProfileToJson(parallel).dump(2);
  EXPECT_EQ(a, b);
  ASSERT_GT(serial.totalComputeCycles(), 0.0);
}

// Pay-for-what-you-use: with no TileProfile attached the engine runs the
// identical superstep schedule — same compute-set executions, same cycle
// totals, same exchange accounting. Profiling observes; it never perturbs.
TEST(TileProfileOverhead, DisabledProfilingChangesNothing) {
  ProfiledSetup setup;
  auto plain = setup.run(nullptr);
  TileProfile tp;
  auto profiled = setup.run(&tp);

  const ipu::Profile& a = plain->profile();
  const ipu::Profile& b = profiled->profile();
  EXPECT_EQ(a.computeCycles, b.computeCycles);
  EXPECT_EQ(a.computeSupersteps, b.computeSupersteps);
  EXPECT_EQ(a.exchangeSupersteps, b.exchangeSupersteps);
  EXPECT_EQ(a.exchangeCycles, b.exchangeCycles);
  EXPECT_EQ(a.syncCycles, b.syncCycles);
  EXPECT_EQ(a.exchangedBytes, b.exchangedBytes);
  EXPECT_EQ(a.exchangeInstructions, b.exchangeInstructions);
  EXPECT_EQ(a.verticesExecuted, b.verticesExecuted);
  EXPECT_EQ(plain->simCycles(), profiled->simCycles());
  EXPECT_EQ(plain->tileProfile(), nullptr);
}

// dump → parse → rebuild → dump is a fixed point, and the rebuilt report
// carries the same planes.
TEST(TileProfileExport, JsonRoundTrips) {
  ProfiledSetup setup;
  TileProfile tp;
  setup.run(&tp);
  tp.label = "cg[roundtrip]";

  json::Value doc = support::tileProfileToJson(tp);
  TileProfile back = support::tileProfileFromJson(doc);
  EXPECT_EQ(doc.dump(2), support::tileProfileToJson(back).dump(2));

  EXPECT_EQ(back.numTiles, tp.numTiles);
  EXPECT_EQ(back.workersPerTile, tp.workersPerTile);
  EXPECT_EQ(back.label, tp.label);
  EXPECT_EQ(back.totalComputeCycles(), tp.totalComputeCycles());
  EXPECT_EQ(back.traffic.totalBytes(), tp.traffic.totalBytes());
  EXPECT_EQ(back.traffic.sendInstructions(), tp.traffic.sendInstructions());
  EXPECT_EQ(back.sram.tensors.size(), tp.sram.tensors.size());
  EXPECT_EQ(support::trafficLocalityScore(back),
            support::trafficLocalityScore(tp));
}

// The SRAM snapshot is the memory ledger, tensor by tensor: the per-tensor
// breakdown sums to the ledger occupancy on every tile, high-water bounds
// occupancy, and the budget is the target's per-tile SRAM.
TEST(TileProfileSram, SnapshotMatchesLedger) {
  ProfiledSetup setup;
  TileProfile tp;
  setup.run(&tp);
  const graph::Graph& g = setup.ctx->graph();

  EXPECT_EQ(tp.sram.budgetBytes, g.target().sramBytesPerTile);
  ASSERT_EQ(tp.sram.usedBytes.size(), tp.numTiles);
  ASSERT_EQ(tp.sram.tensors.size(), g.numTensors());
  for (std::size_t t = 0; t < tp.numTiles; ++t) {
    std::size_t fromTensors = 0;
    for (const auto& tensor : tp.sram.tensors) {
      fromTensors += tensor.bytesPerTile[t];
    }
    EXPECT_EQ(fromTensors, tp.sram.usedBytes[t]) << "tile " << t;
    EXPECT_EQ(tp.sram.usedBytes[t], g.ledger().used(t)) << "tile " << t;
    EXPECT_GE(tp.sram.highWaterBytes[t], tp.sram.usedBytes[t]) << "tile " << t;
    EXPECT_LE(tp.sram.highWaterBytes[t], tp.sram.budgetBytes) << "tile " << t;
  }
  EXPECT_GT(tp.sram.peakUsed(), 0u);
}

// The analyses stay internally consistent: the histogram covers exactly
// the active tiles, stragglers come out in deterministic descending order,
// and every category classifies to one of the three roofline buckets.
TEST(TileProfileAnalyses, ImbalanceStragglersClassification) {
  ProfiledSetup setup;
  TileProfile tp;
  setup.run(&tp);

  const support::ImbalanceStats imb = support::loadImbalance(tp);
  EXPECT_GT(imb.activeTiles, 0u);
  EXPECT_LE(imb.activeTiles, tp.numTiles);
  EXPECT_GE(imb.imbalance, 1.0);
  EXPECT_LE(imb.minCycles, imb.meanCycles);
  EXPECT_LE(imb.meanCycles, imb.maxCycles);
  EXPECT_EQ(std::accumulate(imb.histogram.begin(), imb.histogram.end(),
                            std::size_t{0}),
            imb.activeTiles);

  const auto stragglers = support::topStragglers(tp, tp.numTiles + 4);
  ASSERT_FALSE(stragglers.empty());
  EXPECT_LE(stragglers.size(), tp.numTiles);
  double total = 0;
  for (std::size_t i = 1; i < stragglers.size(); ++i) {
    EXPECT_GE(stragglers[i - 1].criticalCycles, stragglers[i].criticalCycles);
    if (stragglers[i - 1].criticalCycles == stragglers[i].criticalCycles) {
      EXPECT_LT(stragglers[i - 1].tile, stragglers[i].tile);
    }
  }
  for (const auto& s : stragglers) total += s.criticalCycles;
  EXPECT_EQ(total, tp.totalComputeCycles());  // every cycle is attributed

  const auto classes = support::classifyCategories(tp);
  EXPECT_EQ(classes.size(), tp.categories.size());
  double share = 0;
  for (const auto& c : classes) {
    EXPECT_TRUE(c.klass == "compute-bound" || c.klass == "worker-idle" ||
                c.klass == "imbalance-bound")
        << c.category << " → " << c.klass;
    share += c.shareOfCompute;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
  const std::string verdict = support::runClassification(tp);
  EXPECT_TRUE(verdict == "compute-bound" || verdict == "exchange-bound");

  EXPECT_FALSE(support::tileProfileSummaryTable(tp).render().empty());
  EXPECT_FALSE(support::tileStragglerTable(tp).render().empty());
}

// The HTML export is self-contained and carries the report's substance.
TEST(TileProfileExport, HtmlContainsReportSections) {
  ProfiledSetup setup;
  TileProfile tp;
  setup.run(&tp);
  tp.label = "cg-html-test";

  const std::string html = support::tileProfileToHtml(tp);
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("cg-html-test"), std::string::npos);
  EXPECT_NE(html.find("Exchange traffic"), std::string::npos);
  EXPECT_NE(html.find("SRAM"), std::string::npos);
  for (const auto& [cat, plane] : tp.categories) {
    EXPECT_NE(html.find(cat), std::string::npos) << cat;
  }
  // No external assets: self-contained means no script/src/href-out.
  EXPECT_EQ(html.find("<script"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
}

// The §IV A/B through the full session stack: blockwise halo reordering
// versus the per-cell baseline moves exactly the numbers the paper says it
// moves — same payload, fewer send instructions, fewer exchange cycles —
// and the traffic-locality score (what `graphene-prof diff` gates on)
// improves with reordering.
TEST(TileProfileHalo, ReorderingImprovesTrafficLocality) {
  auto g = matrix::poisson2d5(16, 16);
  std::vector<double> rhs(g.matrix.rows(), 1.0);
  const char* cfg = R"({
    "type": "cg", "maxIterations": 100, "tolerance": 1e-6
  })";

  // Only one DSL context may be live at a time, so the sessions run in
  // sequence; the reports are shared_ptrs and outlive their session.
  std::shared_ptr<support::TileProfile> profB, profP;
  std::size_t itersB = 0, itersP = 0;
  {
    SolveSession blockwise({.tiles = 8});
    blockwise.load(g).configure(cfg);
    blockwise.enableTileProfile();
    auto rb = blockwise.solve(rhs);
    profB = rb.tileProfile;
    itersB = rb.solve.iterations;
  }
  {
    SolveSession percell({.tiles = 8, .perCellHalo = true});
    percell.load(g).configure(cfg);
    percell.enableTileProfile();
    auto rp = percell.solve(rhs);
    profP = rp.tileProfile;
    itersP = rp.solve.iterations;
  }

  ASSERT_NE(profB, nullptr);
  ASSERT_NE(profP, nullptr);
  const TileProfile& tb = *profB;
  const TileProfile& tpc = *profP;

  // Same numerics, same payload; only the exchange plan differs.
  EXPECT_EQ(itersB, itersP);
  EXPECT_EQ(tb.traffic.totalBytes(), tpc.traffic.totalBytes());
  EXPECT_LT(tb.traffic.sendInstructions(), tpc.traffic.sendInstructions());
  EXPECT_LT(tb.exchangeCycles, tpc.exchangeCycles);

  const double locB = support::trafficLocalityScore(tb);
  const double locP = support::trafficLocalityScore(tpc);
  EXPECT_GT(locB, locP);
  EXPECT_GT(locB, 0.0);
  EXPECT_LE(locB, 1.0);

  // graphene-prof's diff direction: per-cell baseline → blockwise candidate
  // shows locality ratio > 1 and no cycle regression, so the CI thresholds
  // (--max-cycles-regress 0 --min-locality-ratio 1.0) pass.
  const support::TileProfileDiff diff = support::diffTileProfiles(tpc, tb);
  EXPECT_GT(diff.localityRatio(), 1.0);
  EXPECT_LE(diff.cyclesRatio(), 1.0);
  std::string why;
  EXPECT_TRUE(support::diffWithinThresholds(diff, 0.0, 1.0, &why)) << why;
  EXPECT_FALSE(support::tileProfileDiffTable(diff).render().empty());

  // And the reverse direction is caught as a locality regression.
  const support::TileProfileDiff rev = support::diffTileProfiles(tb, tpc);
  EXPECT_FALSE(support::diffWithinThresholds(rev, -1.0, 1.0, &why));
  EXPECT_FALSE(why.empty());

  // A self-diff is clean under the strictest thresholds.
  const support::TileProfileDiff self = support::diffTileProfiles(tb, tb);
  EXPECT_EQ(self.cyclesRatio(), 1.0);
  EXPECT_EQ(self.localityRatio(), 1.0);
  EXPECT_TRUE(support::diffWithinThresholds(self, 0.0, 1.0, nullptr));
}

// enableTileProfile through the session: the report rides the Result, is
// shared with the session accessor, and is labelled with the solver chain.
TEST(TileProfileSession, ReportOnResult) {
  auto g = matrix::poisson2d5(8, 8);
  SolveSession session({.tiles = 4});
  session.load(g).configure(kCgJson);

  // Without opt-in the result carries no report.
  std::vector<double> rhs(g.matrix.rows(), 1.0);
  auto r0 = session.solve(rhs);
  EXPECT_EQ(r0.tileProfile, nullptr);
  EXPECT_EQ(session.tileProfile(), nullptr);

  session.enableTileProfile();
  auto r1 = session.solve(rhs);
  ASSERT_NE(r1.tileProfile, nullptr);
  EXPECT_EQ(r1.tileProfile.get(), session.tileProfile());
  EXPECT_EQ(r1.tileProfile->label, session.solver().chainName());
  EXPECT_EQ(r1.tileProfile->totalComputeCycles(),
            session.profile().totalComputeCycles());
  EXPECT_EQ(r1.tileProfile->traffic.totalBytes(),
            static_cast<std::uint64_t>(session.profile().exchangedBytes));
}
