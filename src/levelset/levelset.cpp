#include "levelset/levelset.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace graphene::levelset {

LevelSchedule buildLevels(std::span<const std::size_t> rowPtr,
                          std::span<const std::int32_t> colIdx, std::size_t n,
                          bool lower) {
  GRAPHENE_CHECK(rowPtr.size() == n + 1, "rowPtr size mismatch");
  // level[r] = 1 + max(level[dependencies]); computed in topological order,
  // which for triangular dependencies is simply ascending (lower) or
  // descending (upper) row order.
  std::vector<std::int32_t> level(n, 0);
  std::int32_t maxLevel = -1;
  auto process = [&](std::size_t r) {
    std::int32_t lv = 0;
    for (std::size_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      const std::int32_t c = colIdx[k];
      if (c < 0 || static_cast<std::size_t>(c) >= n) continue;  // halo ref
      const std::size_t cs = static_cast<std::size_t>(c);
      const bool isDep = lower ? cs < r : cs > r;
      if (isDep) lv = std::max(lv, level[cs] + 1);
    }
    level[r] = lv;
    maxLevel = std::max(maxLevel, lv);
  };
  if (lower) {
    for (std::size_t r = 0; r < n; ++r) process(r);
  } else {
    for (std::size_t r = n; r-- > 0;) process(r);
  }

  LevelSchedule sched;
  const std::size_t levels = static_cast<std::size_t>(maxLevel + 1);
  sched.levelPtr.assign(levels + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    ++sched.levelPtr[static_cast<std::size_t>(level[r]) + 1];
  }
  for (std::size_t l = 0; l < levels; ++l) {
    sched.levelPtr[l + 1] += sched.levelPtr[l];
  }
  sched.order.resize(n);
  std::vector<std::int32_t> cursor(sched.levelPtr.begin(),
                                   sched.levelPtr.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {
    sched.order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(level[r])]++)] =
        static_cast<std::int32_t>(r);
  }
  return sched;
}

LevelSchedule buildForwardLevels(const matrix::CsrMatrix& a) {
  return buildLevels(a.rowPtr(), a.colIdx(), a.rows(), /*lower=*/true);
}

LevelSchedule buildBackwardLevels(const matrix::CsrMatrix& a) {
  return buildLevels(a.rowPtr(), a.colIdx(), a.rows(), /*lower=*/false);
}

}  // namespace graphene::levelset
