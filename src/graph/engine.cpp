#include "graph/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <thread>

#include "graph/compiler.hpp"
#include "ipu/exchange.hpp"
#include "ipu/health.hpp"
#include "ipu/worker_pool.hpp"
#include "support/thread_pool.hpp"
#include "support/tile_profile.hpp"
#include "support/trace.hpp"

namespace graphene::graph {

namespace {

std::size_t resolveHostThreads(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* e = std::getenv("GRAPHENE_TEST_HOST_THREADS")) {
    const long v = std::strtol(e, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// Adapts the engine's tensor storage to the fault injector's view of the
/// machine (ipu::FaultSurface keeps the ipu layer independent of graph).
class EngineFaultSurface final : public ipu::FaultSurface {
 public:
  explicit EngineFaultSurface(Engine& engine) : engine_(engine) {}

  std::size_t numTensors() override { return engine_.graph().numTensors(); }

  std::string tensorName(std::size_t tensor) override {
    return engine_.graph().tensor(static_cast<TensorId>(tensor)).name;
  }

  std::size_t tensorElements(std::size_t tensor) override {
    return engine_.storageFor(static_cast<TensorId>(tensor)).totalElements();
  }

  void flipBit(std::size_t tensor, std::size_t element,
               unsigned bit) override {
    engine_.storageFor(static_cast<TensorId>(tensor)).flipBit(element, bit);
  }

  void zeroElement(std::size_t tensor, std::size_t element) override {
    TensorStorage& s = engine_.storageFor(static_cast<TensorId>(tensor));
    s.store(element, Scalar::zero(s.dtype()));
  }

  ipu::Profile& profile() override { return engine_.profile(); }

 private:
  Engine& engine_;
};

}  // namespace

/// VertexContext over a plan's precomputed argument windows; indices are
/// slice-relative, which enforces tile-local access. Holds a raw pointer to
/// the engine's storage array: during a compute superstep no tensors are
/// created, so the pointer is stable — including under tile-parallel
/// execution, where concurrent contexts touch disjoint regions.
class Engine::PlanVertexContext final : public VertexContext {
 public:
  PlanVertexContext(TensorStorage* storage, const PlanArg* args,
                    std::size_t numArgs)
      : storage_(storage), args_(args), numArgs_(numArgs) {}

  std::size_t numArgs() const override { return numArgs_; }

  std::size_t argSize(std::size_t arg) const override {
    GRAPHENE_DCHECK(arg < numArgs_, "arg out of range");
    return args_[arg].count;
  }

  ipu::DType argType(std::size_t arg) const override {
    GRAPHENE_DCHECK(arg < numArgs_, "arg out of range");
    return args_[arg].dtype;
  }

  Scalar load(std::size_t arg, std::size_t index) const override {
    GRAPHENE_DCHECK(arg < numArgs_, "arg out of range");
    GRAPHENE_DCHECK(index < args_[arg].count, "codelet read past its slice");
    return storage_[args_[arg].tensor].load(args_[arg].base + index);
  }

  void store(std::size_t arg, std::size_t index,
             const Scalar& value) override {
    GRAPHENE_DCHECK(arg < numArgs_, "arg out of range");
    GRAPHENE_DCHECK(index < args_[arg].count, "codelet write past its slice");
    storage_[args_[arg].tensor].store(args_[arg].base + index, value);
  }

  std::span<float> floatSpan(std::size_t arg) override {
    GRAPHENE_DCHECK(arg < numArgs_, "arg out of range");
    auto whole = storage_[args_[arg].tensor].as<float>();
    return whole.subspan(args_[arg].base, args_[arg].count);
  }

  std::span<const std::int32_t> intSpan(std::size_t arg) const override {
    GRAPHENE_DCHECK(arg < numArgs_, "arg out of range");
    auto whole = storage_[args_[arg].tensor].as<std::int32_t>();
    return whole.subspan(args_[arg].base, args_[arg].count);
  }

 private:
  TensorStorage* storage_;
  const PlanArg* args_;
  std::size_t numArgs_;
};

Engine::Engine(Graph& graph, std::size_t numHostThreads)
    : graph_(graph), numHostThreads_(resolveHostThreads(numHostThreads)) {
  if (const char* e = std::getenv("GRAPHENE_NO_FUSION")) {
    if (e[0] != '\0' && e[0] != '0') fusionEnabled_ = false;
  }
  if (numHostThreads_ > 1) {
    hostPool_ = std::make_unique<support::ThreadPool>(numHostThreads_);
  }
  syncStorage();
}

Engine::~Engine() = default;

void Engine::setTraceSink(support::TraceSink* sink) {
  trace_ = sink;
  // Only fault-log entries appended from now on belong to this trace.
  tracedFaultEvents_ = profile_.faultEvents.size();
}

void Engine::setTileProfile(support::TileProfile* profile) {
  tileProfile_ = profile;
  sramTensorsCaptured_ = 0;
  if (tileProfile_ == nullptr) return;
  const ipu::IpuTarget& target = graph_.target();
  tileProfile_->init(target.totalTiles(), target.workersPerTile,
                     target.exchangeInstrCycles *
                         target.exchangeSendBytesPerCycle,
                     target.tilesPerIpu);
  captureSramSnapshot();
}

void Engine::captureSramSnapshot() {
  const ipu::TileMemoryLedger& ledger = graph_.ledger();
  const std::size_t nTiles = graph_.target().totalTiles();
  support::TileSramProfile& sram = tileProfile_->sram;
  sram.budgetBytes = ledger.budget();
  sram.usedBytes.resize(nTiles);
  sram.highWaterBytes.resize(nTiles);
  for (std::size_t t = 0; t < nTiles; ++t) {
    sram.usedBytes[t] = ledger.used(t);
    sram.highWaterBytes[t] = std::max(sram.highWaterBytes[t],
                                      ledger.highWater(t));
  }
  // Rebuild the per-tensor breakdown from the current graph (a successor
  // engine after a remap brings a fresh graph whose tensors replace the old
  // list; used/high-water above still reflect the machine being profiled).
  sram.tensors.clear();
  for (std::size_t i = 0; i < graph_.numTensors(); ++i) {
    const TensorInfo& info = graph_.tensor(static_cast<TensorId>(i));
    support::TileSramProfile::TensorSram t;
    t.name = info.name;
    t.dtype = ipu::dtypeName(info.dtype);
    t.bytesPerTile.resize(nTiles, 0);
    const std::size_t elemBytes = ipu::sizeOf(info.dtype);
    const std::size_t mapped =
        std::min(nTiles, info.mapping.sizePerTile.size());
    for (std::size_t tile = 0; tile < mapped; ++tile) {
      t.bytesPerTile[tile] = info.mapping.sizePerTile[tile] * elemBytes;
    }
    sram.tensors.push_back(std::move(t));
  }
  sramTensorsCaptured_ = graph_.numTensors();
}

void Engine::traceNewFaultEvents() {
  const auto& log = profile_.faultEvents;
  for (; tracedFaultEvents_ < log.size(); ++tracedFaultEvents_) {
    const ipu::FaultEvent& fe = log[tracedFaultEvents_];
    support::TraceEvent ev;
    ev.kind = fe.kind.rfind("recovery:", 0) == 0
                  ? support::TraceKind::Recovery
                  : support::TraceKind::Fault;
    ev.name = fe.kind;
    ev.startCycle = simClock_;
    ev.superstep = fe.superstep;
    ev.detail = fe.target.empty()
                    ? fe.detail
                    : fe.target + (fe.detail.empty() ? "" : ": " + fe.detail);
    trace_->record(std::move(ev));
  }
}

void Engine::syncStorage() {
  for (std::size_t i = storage_.size(); i < graph_.numTensors(); ++i) {
    storage_.emplace_back(graph_.tensor(static_cast<TensorId>(i)));
  }
}

TensorStorage& Engine::storageFor(TensorId id) {
  syncStorage();
  GRAPHENE_CHECK(id < storage_.size(), "invalid tensor id");
  return storage_[id];
}

Scalar Engine::readScalar(TensorId id) {
  // Replicated scalars are read from the control tile's replica — the one
  // the reduce/broadcast machinery keeps authoritative. Reading a fixed
  // tile 0 would return a frozen value once tile 0 is dead or excluded.
  const graph::TensorInfo& info = graph_.tensor(id);
  const std::size_t flat =
      info.replicated ? info.tileOffset(graph_.controlTile()) : 0;
  return storageFor(id).load(flat);
}

Scalar Engine::readScalarFinite(TensorId id) {
  Scalar value = readScalar(id);
  if (!std::isfinite(value.toHostDouble())) {
    throw NumericalError(detail::concatMessage(
        "non-finite value ", value.toString(), " read from tensor '",
        graph_.tensor(id).name, "'"));
  }
  return value;
}

void Engine::setExcludedTiles(const std::vector<std::size_t>& tiles) {
  tileExcluded_.clear();
  if (tiles.empty()) return;
  tileExcluded_.assign(graph_.target().totalTiles(), 0);
  for (std::size_t t : tiles) {
    GRAPHENE_CHECK(t < tileExcluded_.size(), "excluded tile ", t,
                   " out of range for ", tileExcluded_.size(), " tiles");
    tileExcluded_[t] = 1;
  }
}

void Engine::writeScalar(TensorId id, const Scalar& value) {
  TensorStorage& s = storageFor(id);
  if (graph_.tensor(id).replicated) {
    s.fill(value);  // one cast, then a typed fill over every replica
  } else {
    s.store(0, value);
  }
}

Scalar Engine::loadElement(TensorId id, std::size_t flatIndex) {
  return storageFor(id).load(flatIndex);
}

void Engine::storeElement(TensorId id, std::size_t flatIndex,
                          const Scalar& value) {
  storageFor(id).store(flatIndex, value);
}

void Engine::run(const ProgramPtr& program) {
  if (!program) return;
  runNode(fusionEnabled_ ? fusedFor(program) : program);
}

const ProgramPtr& Engine::fusedFor(const ProgramPtr& program) {
  // Keyed by the root node's address; the cached entry holds the source
  // shared_ptr, so a hit can never be a recycled allocation. A step-count
  // check catches the one mutation pattern contexts actually perform —
  // tracing more steps into an already-run program.
  const std::size_t steps = program->stepCount();
  auto it = fusedPrograms_.find(program.get());
  if (it == fusedPrograms_.end() || it->second.sourceSteps != steps) {
    FusedProgram entry;
    entry.source = program;
    entry.fused = fuseSupersteps(program, graph_);
    entry.sourceSteps = steps;
    it = fusedPrograms_.insert_or_assign(program.get(), std::move(entry))
             .first;
  }
  return it->second.fused;
}

void Engine::runNode(const ProgramPtr& program) {
  if (!program) return;
  syncStorage();
  switch (program->kind) {
    case Program::Kind::Sequence:
      for (const auto& child : program->children) runNode(child);
      break;
    case Program::Kind::Execute:
      runExecute(program->computeSet);
      break;
    case Program::Kind::ExecuteFused:
      runExecuteFused(program);
      break;
    case Program::Kind::Copy:
      runCopy(program);
      break;
    case Program::Kind::Repeat:
      for (std::size_t i = 0; i < program->repeatCount; ++i) {
        runNode(program->body);
      }
      break;
    case Program::Kind::RepeatWhile:
      while (true) {
        runNode(program->condProgram);
        if (!readScalar(program->condTensor).truthy()) break;
        runNode(program->body);
      }
      break;
    case Program::Kind::If:
      runNode(program->condProgram);
      if (readScalar(program->condTensor).truthy()) {
        runNode(program->thenBody);
      } else {
        runNode(program->elseBody);
      }
      break;
    case Program::Kind::HostCall:
      if (program->hostFn) program->hostFn(*this);
      // Solver guards append recovery actions to the fault log from host
      // callbacks; mirror them into the trace right away so the timeline
      // stays ordered.
      if (trace_ != nullptr) traceNewFaultEvents();
      break;
  }
}

const Engine::ExecPlan& Engine::planFor(ComputeSetId csId) {
  if (plans_.size() <= csId) plans_.resize(csId + 1);
  ExecPlan& plan = plans_[csId];
  const ComputeSet& cs = graph_.computeSet(csId);
  if (plan.builtVertices == cs.vertices.size()) return plan;

  // Rebuild from scratch: vertices are appended to compute sets in bulk at
  // graph-construction time, so in practice this runs once per compute set
  // and every later execution is a cache hit.
  plan = ExecPlan{};
  std::map<std::size_t, std::vector<std::size_t>> byTile;
  for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
    byTile[cs.vertices[i].tile].push_back(i);
  }
  plan.vertexOrder.reserve(cs.vertices.size());
  plan.argStart.reserve(cs.vertices.size() + 1);
  for (const auto& [tile, vertexIds] : byTile) {
    plan.tasks.push_back(TileTask{tile, plan.vertexOrder.size(),
                                  vertexIds.size()});
    for (std::size_t vi : vertexIds) {
      plan.argStart.push_back(plan.args.size());
      plan.vertexOrder.push_back(vi);
      for (const TensorSlice& s : cs.vertices[vi].args) {
        TensorStorage& ts = storageFor(s.tensor);
        plan.args.push_back(PlanArg{s.tensor, ts.tileOffset(s.tile) + s.begin,
                                    s.count, ts.dtype()});
      }
    }
  }
  plan.argStart.push_back(plan.args.size());
  plan.builtVertices = cs.vertices.size();
  return plan;
}

double Engine::runTileTask(const ComputeSet& cs, const ExecPlan& plan,
                           TensorStorage* storage, std::size_t task,
                           double* workerBusyOut) {
  const TileTask& t = plan.tasks[task];
  ipu::WorkerPool pool(graph_.target().workersPerTile);
  std::size_t nextWorker = 0;
  double workerBusy = 0;  // issue slots used, summed over the 6 workers
  for (std::size_t p = t.firstVertex; p < t.firstVertex + t.count; ++p) {
    const Vertex& v = cs.vertices[plan.vertexOrder[p]];
    PlanVertexContext ctx(storage, plan.args.data() + plan.argStart[p],
                          plan.argStart[p + 1] - plan.argStart[p]);
    VertexCost cost = graph_.codelet(v.codelet).run(ctx);
    if (cost.wholeTile) {
      // Supervisor codelet driving all workers itself: serialise against
      // everything else on the tile.
      pool.sync();
      for (std::size_t w = 0; w < pool.numWorkers(); ++w) {
        pool.addCycles(w, cost.workerCycles);
      }
      workerBusy += cost.workerCycles * static_cast<double>(pool.numWorkers());
    } else {
      pool.addCycles(nextWorker, cost.workerCycles);
      nextWorker = (nextWorker + 1) % pool.numWorkers();
      workerBusy += cost.workerCycles;
    }
  }
  if (workerBusyOut != nullptr) *workerBusyOut = workerBusy;
  return pool.elapsed();
}

void Engine::runExecute(ComputeSetId csId) {
  syncStorage();  // materialise any tensors created since the last program
  const ComputeSet& cs = graph_.computeSet(csId);
  const ipu::IpuTarget& target = graph_.target();
  const ExecPlan& plan = planFor(csId);

  // Permanent faults: activation events and persistent SRAM damage are
  // applied serially before the tiles run; the per-task dead-tile query
  // below is a pure function of the plan, so it is safe from the pool.
  const bool hardFaults = faultPlan_ != nullptr && faultPlan_->hasHardFaults();
  if (hardFaults) {
    EngineFaultSurface surface(*this);
    faultPlan_->onComputeSuperstepStart(profile_.computeSupersteps, surface);
  }

  // Simulate every tile of the superstep, one TileTask per tile with data.
  // Tasks write to disjoint storage regions and to their own tileCycles_
  // slot, so running them on the host pool is race-free and — because each
  // task's arithmetic is self-contained — bit-identical to the serial loop.
  // A dead tile executes nothing: it charges its watchdog-scale cycle count
  // and leaves its storage exactly as the previous superstep left it.
  TensorStorage* storage = storage_.data();
  const std::size_t nTasks = plan.tasks.size();
  const std::size_t superstepIndex = profile_.computeSupersteps;
  const bool tileProfiling = tileProfile_ != nullptr;
  if (tileProfiling) {
    if (graph_.numTensors() != sramTensorsCaptured_) captureSramSnapshot();
    tileBusy_.assign(nTasks, 0.0);
  }
  auto taskCycles = [&](std::size_t ti) -> double {
    const std::size_t tile = plan.tasks[ti].tile;
    if (!tileExcluded_.empty() && tileExcluded_[tile]) return 0.0;
    if (hardFaults) {
      if (faultPlan_->tileDead(tile, superstepIndex)) {
        return faultPlan_->deadTileCycles(tile);
      }
      const std::size_t ipu = target.ipuOfTile(tile);
      if (faultPlan_->ipuDead(ipu, superstepIndex)) {
        return faultPlan_->deadIpuCycles(ipu);
      }
    }
    return runTileTask(cs, plan, storage, ti,
                       tileProfiling ? &tileBusy_[ti] : nullptr);
  };
  tileCycles_.assign(nTasks, 0.0);
  if (hostPool_ != nullptr && nTasks > 1) {
    hostPool_->parallelFor(nTasks, [&](std::size_t ti) {
      tileCycles_[ti] = taskCycles(ti);
    });
  } else {
    for (std::size_t ti = 0; ti < nTasks; ++ti) {
      tileCycles_[ti] = taskCycles(ti);
    }
  }
  // Tile-cycle distribution of this superstep: the max is the BSP critical
  // path; min/mean and the straggler tile id feed the straggler stats and
  // the trace. One serial pass in task order, so the result is bit-identical
  // at every host thread count.
  double maxTileCycles = 0;
  double minTileCycles = 0;
  double sumTileCycles = 0;
  std::size_t stragglerTask = 0;
  for (std::size_t ti = 0; ti < nTasks; ++ti) {
    const double c = tileCycles_[ti];
    sumTileCycles += c;
    if (ti == 0 || c < minTileCycles) minTileCycles = c;
    if (c > maxTileCycles) {
      maxTileCycles = c;
      stragglerTask = ti;
    }
  }
  const double meanTileCycles =
      nTasks > 0 ? sumTileCycles / static_cast<double>(nTasks) : 0.0;
  const std::size_t stragglerTile =
      nTasks > 0 ? plan.tasks[stragglerTask].tile : SIZE_MAX;
  profile_.verticesExecuted += cs.vertices.size();

  // Watchdog: report every tile's cycle count from this serial pass, so
  // trips and dead-tile confirmations are bit-identical at any host thread
  // count. The abort (if armed) fires after the superstep is committed.
  if (health_ != nullptr) {
    for (std::size_t ti = 0; ti < nTasks; ++ti) {
      health_->observeCompute(superstepIndex, plan.tasks[ti].tile,
                              tileCycles_[ti], profile_);
    }
  }

  // Fault injection: SRAM upsets land between supersteps; a stalled tile
  // delays the BSP barrier, so its extra cycles join the critical path.
  if (faultPlan_ != nullptr) {
    EngineFaultSurface surface(*this);
    maxTileCycles +=
        faultPlan_->afterComputeSuperstep(profile_.computeSupersteps, surface);
  }

  // Compute supersteps end with each IPU's *internal* sync; the IPUs sync in
  // parallel, so the cost does not grow with the pod size. Global syncs are
  // only paid when an exchange crosses IPUs (priced in priceExchange).
  profile_.computeCycles[cs.category] += maxTileCycles;
  profile_.superstepStats[cs.category].record(profile_.computeSupersteps,
                                              minTileCycles, meanTileCycles,
                                              maxTileCycles, stragglerTile);
  profile_.syncCycles += target.syncCyclesOnChip;
  profile_.computeSupersteps += 1;

  // Tile-level attribution, from the same serial reduction (deterministic at
  // any host thread count). The superstep's critical path — including any
  // injected stall, mirroring profile_.computeCycles above — is charged to
  // the straggler tile, so per-category tile sums reproduce computeCycles
  // exactly; every other tile books the gap as barrier idle.
  if (tileProfiling) {
    support::TileCategoryProfile& cat = tileProfile_->category(cs.category);
    cat.supersteps += 1;
    for (std::size_t ti = 0; ti < nTasks; ++ti) {
      const std::size_t tile = plan.tasks[ti].tile;
      cat.busyCycles[tile] += tileCycles_[ti];
      cat.workerBusyCycles[tile] += tileBusy_[ti];
      cat.barrierIdleCycles[tile] += maxTileCycles - tileCycles_[ti];
    }
    if (nTasks > 0) cat.criticalCycles[stragglerTile] += maxTileCycles;
    tileProfile_->computeSupersteps += 1;
    tileProfile_->syncCycles += target.syncCyclesOnChip;
  }
  for (const auto& [name, value] : cs.perExecMetrics) {
    profile_.metrics.addCounter(name, value);
  }

  if (trace_ != nullptr) {
    support::TraceEvent ev;
    ev.kind = support::TraceKind::ComputeSuperstep;
    ev.name = cs.category;
    ev.startCycle = simClock_;
    ev.durationCycles = maxTileCycles;
    ev.superstep = profile_.computeSupersteps - 1;
    ev.tileMin = minTileCycles;
    ev.tileMean = meanTileCycles;
    ev.tileMax = maxTileCycles;
    ev.stragglerTile = stragglerTile;
    ev.activeTiles = nTasks;
    trace_->record(std::move(ev));

    support::TraceEvent sync;
    sync.kind = support::TraceKind::Sync;
    sync.name = "sync";
    sync.startCycle = simClock_ + maxTileCycles;
    sync.durationCycles = target.syncCyclesOnChip;
    sync.superstep = profile_.computeSupersteps - 1;
    trace_->record(std::move(sync));
  }
  simClock_ += maxTileCycles + target.syncCyclesOnChip;
  if (trace_ != nullptr) traceNewFaultEvents();

  // The superstep is fully committed (profile, trace, clock); a confirmed
  // dead tile now surfaces as a typed error the solver layer can catch to
  // blacklist, repartition and resume.
  if (health_ != nullptr && health_->abortPending()) {
    health_->clearAbort();
    std::string tiles;
    for (std::size_t t : health_->deadTiles()) {
      if (!tiles.empty()) tiles += ", ";
      tiles += std::to_string(t);
    }
    std::string message;
    if (!health_->deadIpus().empty()) {
      std::string ipus;
      for (std::size_t i : health_->deadIpus()) {
        if (!ipus.empty()) ipus += ", ";
        ipus += std::to_string(i);
      }
      message = detail::concatMessage(
          "hard fault: chip(s) ", ipus,
          " declared dead by watchdog escalation (tiles ", tiles, ")");
    } else {
      message = detail::concatMessage(
          "hard fault: tile(s) ", tiles,
          " confirmed dead by the superstep watchdog");
    }
    throw ipu::HardFaultError(message, health_->deadTiles(),
                              health_->deadIpus());
  }
  checkCancelled();
}

void Engine::runExecuteFused(const ProgramPtr& program) {
  const std::vector<ComputeSetId>& sets = program->fusedSets;
  // The fused fast path reorders tile work relative to the per-superstep
  // hooks (fault injection, watchdog observation, trace emission, tile
  // attribution, cancellation polling, exclusion), all of which must fire
  // between supersteps with storage in exactly the unfused state. Any of
  // them attached → run the members as plain supersteps; the fused node is
  // then semantically just a Sequence of Executes.
  const bool fastPath = faultPlan_ == nullptr && health_ == nullptr &&
                        trace_ == nullptr && tileProfile_ == nullptr &&
                        !cancel_ && tileExcluded_.empty();
  if (!fastPath) {
    for (ComputeSetId cs : sets) runExecute(cs);
    return;
  }

  syncStorage();
  const std::size_t nMembers = sets.size();
  // Build all member plans first (planFor may grow plans_), then take
  // stable pointers for the worklist run.
  for (ComputeSetId cs : sets) planFor(cs);
  std::vector<const ComputeSet*> css(nMembers);
  std::vector<const ExecPlan*> memberPlans(nMembers);
  for (std::size_t m = 0; m < nMembers; ++m) {
    css[m] = &graph_.computeSet(sets[m]);
    memberPlans[m] = &plans_[sets[m]];
  }

  FusedPlan& fp = fusedPlans_[program.get()];
  bool stale = fp.node == nullptr;
  for (std::size_t m = 0; !stale && m < nMembers; ++m) {
    stale = fp.builtVertices[m] != memberPlans[m]->builtVertices;
  }
  if (stale) {
    fp.node = program;
    fp.tiles.clear();
    fp.builtVertices.assign(nMembers, 0);
    std::map<std::size_t, FusedPlan::TileWork> byTile;
    for (std::size_t m = 0; m < nMembers; ++m) {
      const ExecPlan& plan = *memberPlans[m];
      for (std::size_t ti = 0; ti < plan.tasks.size(); ++ti) {
        byTile[plan.tasks[ti].tile].parts.push_back(
            FusedPlan::Part{static_cast<std::uint32_t>(m),
                            static_cast<std::uint32_t>(ti)});
      }
      fp.builtVertices[m] = plan.builtVertices;
    }
    fp.tiles.reserve(byTile.size());
    for (auto& [tile, work] : byTile) fp.tiles.push_back(std::move(work));
  }

  // Run every tile's whole worklist — all members, in program order — as one
  // host task. Legality is the BSP tile-locality invariant: member k+1's
  // work on tile t reads only tile-t slices, which only member k's work on
  // the same tile (already run, in order) may have written. So results are
  // bit-identical to per-superstep dispatch; only the host-side barriers
  // between members disappear.
  TensorStorage* storage = storage_.data();
  if (fusedCycles_.size() < nMembers) fusedCycles_.resize(nMembers);
  for (std::size_t m = 0; m < nMembers; ++m) {
    fusedCycles_[m].assign(memberPlans[m]->tasks.size(), 0.0);
  }
  auto runTile = [&](std::size_t i) {
    for (const FusedPlan::Part& part : fp.tiles[i].parts) {
      fusedCycles_[part.member][part.task] = runTileTask(
          *css[part.member], *memberPlans[part.member], storage, part.task);
    }
  };
  if (hostPool_ != nullptr && fp.tiles.size() > 1) {
    hostPool_->parallelFor(fp.tiles.size(), runTile);
  } else {
    for (std::size_t i = 0; i < fp.tiles.size(); ++i) runTile(i);
  }

  // Commit each member as its own superstep, in program order — the same
  // serial reduction and profile updates as runExecute's no-attachment path,
  // so every Profile total and superstep stat is exactly unchanged.
  const ipu::IpuTarget& target = graph_.target();
  for (std::size_t m = 0; m < nMembers; ++m) {
    const std::vector<double>& cycles = fusedCycles_[m];
    const std::size_t nTasks = cycles.size();
    double maxTileCycles = 0;
    double minTileCycles = 0;
    double sumTileCycles = 0;
    std::size_t stragglerTask = 0;
    for (std::size_t ti = 0; ti < nTasks; ++ti) {
      const double c = cycles[ti];
      sumTileCycles += c;
      if (ti == 0 || c < minTileCycles) minTileCycles = c;
      if (c > maxTileCycles) {
        maxTileCycles = c;
        stragglerTask = ti;
      }
    }
    const double meanTileCycles =
        nTasks > 0 ? sumTileCycles / static_cast<double>(nTasks) : 0.0;
    const std::size_t stragglerTile =
        nTasks > 0 ? memberPlans[m]->tasks[stragglerTask].tile : SIZE_MAX;
    profile_.verticesExecuted += css[m]->vertices.size();
    profile_.computeCycles[css[m]->category] += maxTileCycles;
    profile_.superstepStats[css[m]->category].record(
        profile_.computeSupersteps, minTileCycles, meanTileCycles,
        maxTileCycles, stragglerTile);
    profile_.syncCycles += target.syncCyclesOnChip;
    profile_.computeSupersteps += 1;
    for (const auto& [name, value] : css[m]->perExecMetrics) {
      profile_.metrics.addCounter(name, value);
    }
    simClock_ += maxTileCycles + target.syncCyclesOnChip;
  }
}

void Engine::checkCancelled() {
  if (!cancel_) return;
  const char* reason = cancel_(*this);
  if (reason == nullptr) return;
  throw CancelledError(
      detail::concatMessage("solve cancelled after superstep ",
                            profile_.computeSupersteps, " at cycle ",
                            simClock_, ": ", reason),
      reason);
}

void Engine::runCopy(const ProgramPtr& node) {
  const Program& program = *node;
  // Event-driven fast path: with no fault plan (per-transfer fates, dead
  // senders) and no tile profile (per-transfer traffic matrix) attached,
  // nothing observes individual segments — and both the delivered windows
  // and the priced cost of this Copy step are static. Resolve them once,
  // then every later execution replays the data movement and charges the
  // cached cost directly; a zero-byte exchange (empty halos) skips segment
  // simulation entirely. Committed totals are bit-identical to the full
  // walk below.
  if (faultPlan_ == nullptr && tileProfile_ == nullptr) {
    CopyPlan& cp = copyPlans_[node.get()];
    if (cp.node == nullptr) {
      cp.node = node;
      std::vector<ipu::Transfer> transfers;
      transfers.reserve(program.copies.size());
      for (const CopySegment& seg : program.copies) {
        GRAPHENE_CHECK(seg.src != kInvalidTensor && seg.dst != kInvalidTensor,
                       "copy segment with invalid tensors");
        TensorStorage& src = storageFor(seg.src);
        TensorStorage& dst = storageFor(seg.dst);
        const std::size_t srcFlat =
            src.tileOffset(seg.srcTile) + seg.srcBegin;
        ipu::Transfer t;
        t.srcTile = seg.srcTile;
        t.bytes = seg.count * ipu::sizeOf(src.dtype());
        for (const CopySegment::Destination& d : seg.dsts) {
          const std::size_t dstFlat = dst.tileOffset(d.tile) + d.begin;
          if (seg.src == seg.dst && seg.srcTile == d.tile &&
              srcFlat == dstFlat) {
            continue;  // no-op self copy
          }
          cp.moves.push_back(
              CopyPlan::Move{seg.src, seg.dst, srcFlat, dstFlat, seg.count});
          t.dstTiles.push_back(d.tile);
        }
        if (!t.dstTiles.empty()) transfers.push_back(std::move(t));
      }
      const ipu::ExchangeStats stats =
          ipu::priceExchange(graph_.target(), transfers, nullptr);
      cp.cycles = stats.cycles;
      cp.intraCycles = stats.intraCycles;
      cp.interCycles = stats.interCycles;
      cp.instructions = stats.instructions;
      cp.totalBytes = stats.totalBytes;
      cp.interIpuBytes = stats.interIpuBytes;
      cp.interIpuMessages = stats.interIpuMessages;
    }
    for (const CopyPlan::Move& mv : cp.moves) {
      storage_[mv.dst].copyFrom(storage_[mv.src], mv.srcFlat, mv.dstFlat,
                                mv.count);
    }
    profile_.exchangeCycles += cp.cycles;
    profile_.exchangeIntraCycles += cp.intraCycles;
    profile_.exchangeInterCycles += cp.interCycles;
    profile_.exchangeSupersteps += 1;
    profile_.exchangeInstructions += cp.instructions;
    profile_.exchangedBytes += cp.totalBytes;
    profile_.interIpuBytes += cp.interIpuBytes;
    profile_.interIpuMessages += cp.interIpuMessages;
    for (const auto& [name, value] : program.copyMetrics) {
      profile_.metrics.addCounter(name, value);
    }
    if (trace_ != nullptr) {
      support::TraceEvent ev;
      ev.kind = support::TraceKind::ExchangeSuperstep;
      ev.name = "exchange";
      ev.startCycle = simClock_;
      ev.durationCycles = cp.cycles;
      ev.superstep = profile_.exchangeSupersteps - 1;
      ev.bytes = cp.totalBytes;
      trace_->record(std::move(ev));
    }
    simClock_ += cp.cycles;
    if (trace_ != nullptr) traceNewFaultEvents();
    checkCancelled();
    return;
  }

  const std::vector<CopySegment>& segments = program.copies;
  const bool hardFaults = faultPlan_ != nullptr && faultPlan_->hasHardFaults();
  std::vector<ipu::Transfer> transfers;
  transfers.reserve(segments.size());
  for (const CopySegment& seg : segments) {
    GRAPHENE_CHECK(seg.src != kInvalidTensor && seg.dst != kInvalidTensor,
                   "copy segment with invalid tensors");
    // A dead tile never sends: its outgoing transfers neither deliver nor
    // cost fabric cycles, and every destination keeps its stale data. A dead
    // chip is the same verdict for all of its tiles at once. (Both triggers
    // are on the compute-superstep clock, hence the computeSupersteps index.)
    if (hardFaults &&
        (faultPlan_->tileDead(seg.srcTile, profile_.computeSupersteps) ||
         faultPlan_->ipuDead(graph_.target().ipuOfTile(seg.srcTile),
                             profile_.computeSupersteps))) {
      continue;
    }
    TensorStorage& src = storageFor(seg.src);
    TensorStorage& dst = storageFor(seg.dst);
    const std::size_t srcFlat = src.tileOffset(seg.srcTile) + seg.srcBegin;
    ipu::Transfer t;
    t.srcTile = seg.srcTile;
    t.bytes = seg.count * ipu::sizeOf(src.dtype());
    // Fault injection: a transfer can be dropped (payload lost, destination
    // keeps its stale data) or corrupted (payload lands with a flipped bit).
    // Either way the fabric spent the cycles, so pricing is unchanged.
    ipu::TransferFate fate = ipu::TransferFate::Deliver;
    bool fateDecided = false;
    bool delivered = false;
    std::size_t firstDeliveredFlat = 0;
    for (const CopySegment::Destination& d : seg.dsts) {
      const std::size_t dstFlat = dst.tileOffset(d.tile) + d.begin;
      if (seg.src == seg.dst && seg.srcTile == d.tile && srcFlat == dstFlat) {
        continue;  // no-op self copy
      }
      if (faultPlan_ != nullptr && !fateDecided) {
        EngineFaultSurface surface(*this);
        fate = faultPlan_->onTransfer(profile_.exchangeSupersteps,
                                      transfers.size(), seg.dst, surface);
        fateDecided = true;
      }
      if (fate != ipu::TransferFate::Drop) {
        dst.copyFrom(src, srcFlat, dstFlat, seg.count);
        if (!delivered) {
          delivered = true;
          firstDeliveredFlat = dstFlat;
        }
      }
      t.dstTiles.push_back(d.tile);
    }
    if (fate == ipu::TransferFate::Corrupt && delivered) {
      EngineFaultSurface surface(*this);
      faultPlan_->corruptDelivered(profile_.exchangeSupersteps, seg.dst,
                                   firstDeliveredFlat, seg.count, surface);
    }
    if (!t.dstTiles.empty()) transfers.push_back(std::move(t));
  }
  ipu::LinkFaults linkFaults;
  if (hardFaults) {
    linkFaults = faultPlan_->linkFaults(profile_.exchangeSupersteps,
                                        profile_.computeSupersteps);
  }
  ipu::ExchangeStats stats = ipu::priceExchange(
      graph_.target(), transfers,
      tileProfile_ != nullptr ? &tileProfile_->traffic : nullptr,
      hardFaults ? &linkFaults : nullptr);
  if (hardFaults) {
    // Degraded links slow the whole exchange phase: BSP exchanges complete
    // when the last transfer lands, so one slow link stretches the phase.
    EngineFaultSurface surface(*this);
    const double stretch =
        faultPlan_->onExchangeSuperstep(profile_.exchangeSupersteps, surface);
    stats.cycles *= stretch;
    stats.intraCycles *= stretch;
    stats.interCycles *= stretch;
  }
  profile_.exchangeCycles += stats.cycles;
  profile_.exchangeIntraCycles += stats.intraCycles;
  profile_.exchangeInterCycles += stats.interCycles;
  profile_.exchangeSupersteps += 1;
  profile_.exchangeInstructions += stats.instructions;
  profile_.exchangedBytes += stats.totalBytes;
  profile_.interIpuBytes += stats.interIpuBytes;
  profile_.interIpuMessages += stats.interIpuMessages;
  if (tileProfile_ != nullptr) {
    tileProfile_->exchangeCycles += stats.cycles;
    tileProfile_->exchangeInterCycles += stats.interCycles;
    tileProfile_->exchangeSupersteps += 1;
  }
  for (const auto& [name, value] : program.copyMetrics) {
    profile_.metrics.addCounter(name, value);
  }

  if (trace_ != nullptr) {
    support::TraceEvent ev;
    ev.kind = support::TraceKind::ExchangeSuperstep;
    ev.name = "exchange";
    ev.startCycle = simClock_;
    ev.durationCycles = stats.cycles;
    ev.superstep = profile_.exchangeSupersteps - 1;
    ev.bytes = stats.totalBytes;
    trace_->record(std::move(ev));
  }
  simClock_ += stats.cycles;
  if (trace_ != nullptr) traceNewFaultEvents();
  checkCancelled();
}

}  // namespace graphene::graph
