// Simulator throughput bench: wall-clock speed of the simulator itself
// (vertices/sec and solver iterations/sec), not simulated-device speed.
//
// Tracks the host-side execution engine across PRs: compiled execution
// plans, codelet fast paths, and host-parallel tile execution all move
// these numbers. Emits a JSON summary to stdout (saved as
// BENCH_SIMSPEED.json at the repo root) so the trajectory is recorded.
// Run metadata (git rev, date) comes in via `--git-rev` / `--date` argv
// flags — see bench_json.hpp; the measurement path makes no wall-clock
// calls other than the timed region itself.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"

namespace {

using namespace graphene;

struct Config {
  std::string solver;
  std::size_t rows;
  std::size_t tiles;
  std::size_t iterations;  // CG iterations / MPIR refinements
};

struct Result {
  std::string solver;
  std::size_t hostThreads = 1;
  double seconds = 0;
  double verticesPerSec = 0;
  double itersPerSec = 0;
  std::size_t supersteps = 0;
};

Result runOnce(const Config& cfg, std::size_t hostThreads) {
  auto g = matrix::poisson2d5(cfg.rows, cfg.rows);
  ipu::IpuTarget target = ipu::IpuTarget::testTarget(cfg.tiles);
  bench::DistSystem s = bench::makeSystem(g, target);
  dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = s.A->makeVector(dsl::DType::Float32, "b");

  std::unique_ptr<solver::Solver> slv;
  std::size_t iters = cfg.iterations;
  if (cfg.solver == "cg") {
    slv = std::make_unique<solver::CgSolver>(
        cfg.iterations, 0.0, std::make_unique<solver::JacobiSolver>(2));
  } else {
    slv = std::make_unique<solver::MpirSolver>(
        ipu::DType::DoubleWord, cfg.iterations, 0.0,
        std::make_unique<solver::CgSolver>(
            10, 0.0, std::make_unique<solver::IdentitySolver>()));
    iters = cfg.iterations * 10;  // inner iterations dominate
  }
  slv->apply(*s.A, x, b);

  auto rhs = bench::randomRhs(g.matrix.rows(), 7);
  s.engine = std::make_unique<graph::Engine>(s.ctx->graph(), hostThreads);
  s.A->upload(*s.engine);
  s.A->writeVector(*s.engine, b, rhs);

  auto t0 = std::chrono::steady_clock::now();
  s.engine->run(s.ctx->program());
  auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.solver = cfg.solver;
  r.hostThreads = hostThreads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.supersteps = s.engine->profile().computeSupersteps;
  r.verticesPerSec =
      static_cast<double>(s.engine->profile().verticesExecuted) / r.seconds;
  r.itersPerSec = static_cast<double>(iters) / r.seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<Config> configs = {
      {"cg", 48, 16, 40},
      {"mpir", 48, 16, 3},
  };

  // 1 thread isolates the plan-cache + fast-path gains; the ladder up to
  // hardware_concurrency measures tile-parallel scaling (flat on 1-core
  // hosts by definition).
  std::vector<std::size_t> threadCounts = {1, 2, 4};
  const std::size_t hw = std::thread::hardware_concurrency() > 0
                             ? std::thread::hardware_concurrency()
                             : 1;
  if (hw > 4) threadCounts.push_back(hw);

  bench::BenchMeta meta = bench::parseBenchMeta(argc, argv);
  meta.tiles = configs.front().tiles;
  // The real host concurrency the ladder ran against. Rows still sweep their
  // own hostThreads; ones exceeding the core count are marked `saturated`
  // below so readers (and the perf gate) don't misread an oversubscribed
  // flat line as a scaling failure.
  meta.hostThreads = hw;
  bench::BenchReport report("simspeed", meta);
  report.setField("hardwareConcurrency", hw);

  for (const Config& cfg : configs) {
    for (std::size_t threads : threadCounts) {
      Result r = runOnce(cfg, threads);
      json::Object row;
      row["solver"] = r.solver;
      row["hostThreads"] = r.hostThreads;
      row["seconds"] = r.seconds;
      row["supersteps"] = r.supersteps;
      row["itersPerSec"] = r.itersPerSec;
      row["verticesPerSec"] = r.verticesPerSec;
      if (threads > hw) row["saturated"] = true;
      report.addResult(std::move(row));
    }
  }
  std::printf("%s\n", report.dump().c_str());
  return 0;
}
