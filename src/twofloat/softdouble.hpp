// SoftDouble — software-emulated IEEE-754 binary64 arithmetic.
//
// The IPU has no double-precision hardware; the paper's FLOAT64 type is
// emulated in software (compiler-rt soft-float, §III-D, Table I). This class
// is our from-scratch equivalent: all arithmetic is performed on the 64-bit
// pattern with integer operations only, with round-to-nearest-even, correct
// handling of signed zeros, subnormals, infinities and NaNs.
//
// It serves two purposes:
//   1. The DSL's FLOAT64 data type materialises through it, so FLOAT64
//      results on the "IPU" genuinely come from the emulation path.
//   2. Its per-operation costs in the simulator cost table reproduce the
//      ~1080/1260/2520-cycle numbers of Table I.
#pragma once

#include <cstdint>
#include <string>

namespace graphene::twofloat {

class SoftDouble {
 public:
  constexpr SoftDouble() : bits_(0) {}

  /// Constructs from a raw IEEE-754 binary64 bit pattern.
  static constexpr SoftDouble fromBits(std::uint64_t bits) {
    SoftDouble d;
    d.bits_ = bits;
    return d;
  }

  /// Constructs from a host double (bit-exact, no arithmetic involved).
  static SoftDouble fromDouble(double value);

  /// Constructs from a float (exact widening conversion done in software).
  static SoftDouble fromFloat(float value);

  /// Bit-exact conversion back to a host double (for verification/IO).
  double toDouble() const;

  /// Conversion to float with round-to-nearest-even (software narrowing).
  float toFloat() const;

  constexpr std::uint64_t bits() const { return bits_; }

  bool isNan() const;
  bool isInf() const;
  bool isZero() const;

  /// Arithmetic, all performed in software on the bit patterns.
  friend SoftDouble operator+(SoftDouble a, SoftDouble b);
  friend SoftDouble operator-(SoftDouble a, SoftDouble b);
  friend SoftDouble operator*(SoftDouble a, SoftDouble b);
  friend SoftDouble operator/(SoftDouble a, SoftDouble b);
  friend SoftDouble operator-(SoftDouble a);

  /// IEEE comparison (NaN compares unordered; -0 == +0).
  friend bool operator==(SoftDouble a, SoftDouble b);
  friend bool operator<(SoftDouble a, SoftDouble b);
  friend bool operator<=(SoftDouble a, SoftDouble b);
  friend bool operator>(SoftDouble a, SoftDouble b) { return b < a; }
  friend bool operator>=(SoftDouble a, SoftDouble b) { return b <= a; }
  friend bool operator!=(SoftDouble a, SoftDouble b) { return !(a == b); }

  /// Square root (software Newton iteration on the bit pattern).
  static SoftDouble sqrt(SoftDouble x);

  /// Absolute value (clears the sign bit).
  static constexpr SoftDouble abs(SoftDouble x) {
    return fromBits(x.bits_ & 0x7FFFFFFFFFFFFFFFull);
  }

 private:
  std::uint64_t bits_;
};

}  // namespace graphene::twofloat
