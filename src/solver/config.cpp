// JSON-driven solver factory (§V: "The solver hierarchy and associated
// parameters are easily configured through a JSON file").
//
// Configs are validated strictly: an unknown key or a key of the wrong JSON
// type is an error that names the offending key and lists the keys the
// solver type accepts. A typo like "tolerence" therefore fails the build of
// the solver instead of silently running with the default.
#include "solver/solvers.hpp"
#include "support/error.hpp"

namespace graphene::solver {

namespace {

DType parseExtendedType(const std::string& s) {
  if (s == "doubleword" || s == "dw") return DType::DoubleWord;
  if (s == "float64" || s == "double" || s == "dp") return DType::Float64;
  if (s == "float32" || s == "float" || s == "none") return DType::Float32;
  GRAPHENE_CHECK(false, "unknown extended type '", s, "'");
  return DType::Float32;
}

/// What a solver config key must hold.
enum class KeyKind { Number, String, Object, Bool };

const char* toString(KeyKind kind) {
  switch (kind) {
    case KeyKind::Number: return "number";
    case KeyKind::String: return "string";
    case KeyKind::Object: return "object";
    case KeyKind::Bool: return "boolean";
  }
  return "?";
}

struct KeySpec {
  const char* key;
  KeyKind kind;
};

/// Rejects unknown keys and wrong JSON types, naming the offending key and
/// listing the keys `where` accepts.
void validateKeys(const json::Value& config, const std::string& where,
                  std::initializer_list<KeySpec> allowed) {
  for (const auto& [key, value] : config.asObject()) {
    const KeySpec* spec = nullptr;
    for (const KeySpec& s : allowed) {
      if (key == s.key) {
        spec = &s;
        break;
      }
    }
    if (spec == nullptr) {
      std::string valid;
      for (const KeySpec& s : allowed) {
        if (!valid.empty()) valid += ", ";
        valid += s.key;
      }
      GRAPHENE_CHECK(false, "unknown key '", key, "' in ", where,
                     " config (valid keys: ", valid, ")");
    }
    const bool ok = spec->kind == KeyKind::Number   ? value.isNumber()
                    : spec->kind == KeyKind::String ? value.isString()
                    : spec->kind == KeyKind::Bool   ? value.isBool()
                                                    : value.isObject();
    GRAPHENE_CHECK(ok, "key '", key, "' in ", where, " config must be a ",
                   toString(spec->kind));
  }
}

}  // namespace

RobustnessOptions parseRobustness(const json::Value& config) {
  RobustnessOptions opts;
  if (!config.isObject() || !config.contains("robustness")) return opts;
  const json::Value& r = config.at("robustness");
  GRAPHENE_CHECK(r.isObject(), "'robustness' must be a JSON object");
  validateKeys(r, "'robustness'",
               {{"maxRestarts", KeyKind::Number},
                {"divergenceFactor", KeyKind::Number},
                {"breakdownTolerance", KeyKind::Number},
                {"checkpointEvery", KeyKind::Number},
                {"maxRollbacks", KeyKind::Number},
                {"residualGrowthFactor", KeyKind::Number},
                {"abft", KeyKind::Bool},
                {"abftTolerance", KeyKind::Number}});
  opts.maxRestarts = static_cast<std::size_t>(
      r.getOr("maxRestarts", static_cast<std::int64_t>(opts.maxRestarts)));
  opts.divergenceFactor = r.getOr("divergenceFactor", opts.divergenceFactor);
  opts.breakdownTolerance =
      r.getOr("breakdownTolerance", opts.breakdownTolerance);
  opts.checkpointEvery = static_cast<std::size_t>(r.getOr(
      "checkpointEvery", static_cast<std::int64_t>(opts.checkpointEvery)));
  opts.maxRollbacks = static_cast<std::size_t>(
      r.getOr("maxRollbacks", static_cast<std::int64_t>(opts.maxRollbacks)));
  opts.residualGrowthFactor =
      r.getOr("residualGrowthFactor", opts.residualGrowthFactor);
  opts.abft = r.getOr("abft", opts.abft);
  opts.abftTolerance = r.getOr("abftTolerance", opts.abftTolerance);
  GRAPHENE_CHECK(opts.abftTolerance > 0.0,
                 "robustness.abftTolerance must be positive");
  GRAPHENE_CHECK(opts.divergenceFactor > 0.0,
                 "robustness.divergenceFactor must be positive");
  GRAPHENE_CHECK(opts.breakdownTolerance >= 0.0,
                 "robustness.breakdownTolerance must be non-negative");
  GRAPHENE_CHECK(opts.residualGrowthFactor > 1.0,
                 "robustness.residualGrowthFactor must exceed 1");
  return opts;
}

std::unique_ptr<Solver> makeSolver(const json::Value& config) {
  GRAPHENE_CHECK(config.isObject(), "solver config must be a JSON object");
  GRAPHENE_CHECK(config.contains("type"),
                 "solver config needs a 'type' key (bicgstab, cg, mpir, "
                 "gauss-seidel, richardson, jacobi, ilu, dilu, identity)");
  GRAPHENE_CHECK(config.at("type").isString(),
                 "key 'type' in solver config must be a string");
  const std::string type = config.at("type").asString();
  const std::string where = "'" + type + "' solver";

  if (type == "identity" || type == "none") {
    validateKeys(config, where, {{"type", KeyKind::String}});
    return std::make_unique<IdentitySolver>();
  }
  if (type == "jacobi") {
    validateKeys(config, where,
                 {{"type", KeyKind::String},
                  {"iterations", KeyKind::Number},
                  {"omega", KeyKind::Number}});
    return std::make_unique<JacobiSolver>(
        static_cast<std::size_t>(config.getOr("iterations", 3)),
        static_cast<float>(config.getOr("omega", 1.0)));
  }
  if (type == "gauss-seidel" || type == "gaussseidel" || type == "gs") {
    validateKeys(config, where,
                 {{"type", KeyKind::String},
                  {"sweeps", KeyKind::Number},
                  {"tolerance", KeyKind::Number},
                  {"maxIterations", KeyKind::Number}});
    return std::make_unique<GaussSeidelSolver>(
        static_cast<std::size_t>(config.getOr("sweeps", 1)),
        config.getOr("tolerance", 0.0),
        static_cast<std::size_t>(config.getOr("maxIterations", 1000)));
  }
  if (type == "ilu") {
    validateKeys(config, where, {{"type", KeyKind::String}});
    return std::make_unique<IluSolver>(IluSolver::Variant::Ilu0);
  }
  if (type == "dilu") {
    validateKeys(config, where, {{"type", KeyKind::String}});
    return std::make_unique<IluSolver>(IluSolver::Variant::Dilu);
  }
  if (type == "richardson") {
    validateKeys(config, where,
                 {{"type", KeyKind::String},
                  {"iterations", KeyKind::Number},
                  {"omega", KeyKind::Number}});
    return std::make_unique<RichardsonSolver>(
        static_cast<std::size_t>(config.getOr("iterations", 10)),
        static_cast<float>(config.getOr("omega", 0.5)));
  }
  if (type == "bicgstab" || type == "cg") {
    if (type == "cg") {
      validateKeys(config, where,
                   {{"type", KeyKind::String},
                    {"maxIterations", KeyKind::Number},
                    {"tolerance", KeyKind::Number},
                    {"preconditioner", KeyKind::Object},
                    {"robustness", KeyKind::Object},
                    {"pipelined", KeyKind::Bool},
                    {"reduction", KeyKind::String},
                    {"residualReplaceEvery", KeyKind::Number}});
    } else {
      validateKeys(config, where,
                   {{"type", KeyKind::String},
                    {"maxIterations", KeyKind::Number},
                    {"tolerance", KeyKind::Number},
                    {"preconditioner", KeyKind::Object},
                    {"robustness", KeyKind::Object}});
    }
    std::unique_ptr<Solver> precond;
    if (config.contains("preconditioner")) {
      precond = makeSolver(config.at("preconditioner"));
    } else {
      precond = std::make_unique<IdentitySolver>();
    }
    const auto maxIterations =
        static_cast<std::size_t>(config.getOr("maxIterations", 1000));
    const double tolerance = config.getOr("tolerance", 1e-9);
    if (type == "cg") {
      // "reduction" picks how the dot products reduce on pods: "auto"
      // (two-level on multi-IPU targets), "flat", or "two-level".
      const std::string red = config.getOr("reduction", std::string("auto"));
      graph::Graph::ReduceMode mode = graph::Graph::ReduceMode::Auto;
      if (red == "flat") {
        mode = graph::Graph::ReduceMode::Flat;
      } else if (red == "two-level" || red == "twolevel" ||
                 red == "hierarchical") {
        mode = graph::Graph::ReduceMode::TwoLevel;
      } else {
        GRAPHENE_CHECK(red == "auto", "key 'reduction' in ", where,
                       " config must be auto, flat or two-level (got '", red,
                       "')");
      }
      if (config.getOr("pipelined", false)) {
        const auto replaceEvery = static_cast<std::size_t>(
            config.getOr("residualReplaceEvery", 16));
        return std::make_unique<PipelinedCgSolver>(
            maxIterations, tolerance, std::move(precond),
            parseRobustness(config), mode, replaceEvery);
      }
      GRAPHENE_CHECK(!config.contains("residualReplaceEvery"),
                     "key 'residualReplaceEvery' in ", where,
                     " config requires \"pipelined\": true");
      return std::make_unique<CgSolver>(maxIterations, tolerance,
                                        std::move(precond),
                                        parseRobustness(config), mode);
    }
    return std::make_unique<BiCgStabSolver>(maxIterations, tolerance,
                                            std::move(precond),
                                            parseRobustness(config));
  }
  if (type == "mpir" || type == "ir") {
    validateKeys(config, where,
                 {{"type", KeyKind::String},
                  {"extendedType", KeyKind::String},
                  {"maxRefinements", KeyKind::Number},
                  {"tolerance", KeyKind::Number},
                  {"inner", KeyKind::Object},
                  {"robustness", KeyKind::Object}});
    GRAPHENE_CHECK(config.contains("inner"),
                   "mpir solver needs an 'inner' solver config");
    return std::make_unique<MpirSolver>(
        parseExtendedType(config.getOr("extendedType",
                                       std::string("doubleword"))),
        static_cast<std::size_t>(config.getOr("maxRefinements", 20)),
        config.getOr("tolerance", 1e-13), makeSolver(config.at("inner")),
        parseRobustness(config));
  }
  GRAPHENE_CHECK(false, "unknown solver type '", type,
                 "' (valid: bicgstab, cg, mpir, ir, gauss-seidel, "
                 "richardson, jacobi, ilu, dilu, identity)");
  return nullptr;
}

std::unique_ptr<Solver> makeSolverFromString(const std::string& jsonText) {
  return makeSolver(json::parse(jsonText));
}

}  // namespace graphene::solver
