// SolveSession — the one-stop solver API.
//
// Composing a solve by hand takes five objects in the right order: an
// IpuTarget, a dsl::Context, a partition layout, a DistMatrix, a Solver and
// finally an Engine per execution. SolveSession owns that choreography
// behind three calls:
//
//   SolveSession session;
//   session.load(matrix::poisson3d7(24, 24, 24))
//          .configure(R"({"type": "cg", "tolerance": 1e-6})");
//   auto result = session.solve(rhs);
//   // result.x, result.solve.status, session.trace(), session.profile()
//
// Every solve runs on a fresh Engine with the session's TraceSink attached,
// so the merged timeline (compute/exchange/sync spans, solver iterations,
// fault and recovery events) and the cycle profile are always available
// afterwards — observability is the default here, not an opt-in.
//
// Hard-fault recovery: when a fault plan with permanent faults is attached,
// every solve runs under a superstep watchdog (ipu::HealthMonitor). A tile
// the watchdog confirms dead is blacklisted, the whole pipeline (layout,
// DistMatrix, solver program) is rebuilt over the surviving tiles, the
// best-known iterate x0 is migrated out of the dying engine, and the solve
// resumes on the shifted system A·dx = b − A·x0 (final x = x0 + dx). The
// fault log carries across the remap, with recovery:blacklist and
// recovery:remap entries marking the seam. On pods the watchdog also
// escalates: when enough of one chip's tiles are confirmed dead the chip
// itself is declared ipu-dead, and recovery shrinks the topology (a new
// fingerprint over the surviving chips) instead of blacklisting tile by
// tile — recovery:ipu-blacklist entries mark which chips went.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ipu/fault.hpp"
#include "ipu/topology.hpp"
#include "matrix/generators.hpp"
#include "solver/solver.hpp"
#include "support/tile_profile.hpp"
#include "support/trace.hpp"

namespace graphene::dsl {
class Context;
}
namespace graphene::ipu {
class HealthMonitor;
}

namespace graphene::solver {

struct SessionOptions {
  /// Tiles of the simulated machine. When `topology` is unset this is a
  /// single IPU with this many tiles (IpuTarget::testTarget geometry) —
  /// unless GRAPHENE_TEST_POD=N is set and divides it, in which case the
  /// session runs on an N-IPU pod with tiles/N tiles per chip. When
  /// `topology` is set it wins and this field is overwritten with its total.
  std::size_t tiles = 32;
  /// Explicit machine shape (chips x tiles, link model). Overrides `tiles`
  /// and the GRAPHENE_TEST_POD environment variable.
  std::optional<ipu::Topology> topology = std::nullopt;
  /// Host threads simulating tiles in parallel; 0 = Engine's default
  /// resolution (GRAPHENE_TEST_HOST_THREADS, else hardware concurrency).
  std::size_t hostThreads = 0;
  /// Ring capacity of the session's TraceSink; 0 disables tracing.
  std::size_t traceCapacity = support::TraceSink::kDefaultCapacity;
  /// Watchdog: compute cycles one tile may spend in a single superstep
  /// before it counts as a trip (only armed while a fault plan with hard
  /// faults is attached). Must sit below the dead-tile charge (default
  /// 1e9 cycles) and above every legitimate superstep.
  double watchdogCycleBudget = 5e7;
  /// Watchdog: consecutive trips before a tile is confirmed dead.
  std::size_t watchdogTrips = 2;
  /// Watchdog escalation on pods: fraction of one chip's tiles that must be
  /// confirmed dead before the whole chip is declared ipu-dead and the
  /// recovery path shrinks the topology instead of blacklisting tile by
  /// tile. In (0, 1]. Ignored on single-IPU sessions.
  double watchdogIpuDeadFraction = 0.5;
  /// Hard-fault recovery budget: how many blacklist-and-repartition cycles
  /// a single solve() may take. When yet another tile is confirmed dead
  /// with the budget exhausted, solve() rethrows the typed HardFaultError —
  /// it never limps on with a freshly dead tile still in the machine.
  std::size_t maxRemaps = 1;
  /// Emits halo exchanges per cell instead of as blockwise region
  /// broadcasts — the pre-reordering baseline of §IV. A/B profiling only
  /// (same numerics, more exchange instructions); also forced by the
  /// GRAPHENE_NO_HALO_REORDER environment variable.
  bool perCellHalo = false;
};

/// The machine shape a SessionOptions resolves to: its explicit `topology`
/// if set, else an N-IPU pod when GRAPHENE_TEST_POD=N divides `tiles`, else
/// a single IPU with `tiles` tiles. Deterministic per process — the plan
/// cache hashes the resolved shape into its structure fingerprints.
ipu::Topology resolveSessionTopology(const SessionOptions& options);

class SolveSession {
 public:
  explicit SolveSession(SessionOptions options = {});
  ~SolveSession();
  SolveSession(const SolveSession&) = delete;
  SolveSession& operator=(const SolveSession&) = delete;

  /// Builds the distributed matrix: partitions the rows (grid partitioning
  /// when geometry is available, BFS otherwise), lays out the §IV halo
  /// regions and creates the device structures. Call once, before solve().
  ///
  /// Note: a SolveSession owns the (thread-local, single-active)
  /// dsl::Context from load() until destruction — build sessions one at a
  /// time.
  SolveSession& load(const matrix::GeneratedMatrix& m);
  /// Same for a bare CSR matrix with no geometry hints (BFS partitioning).
  SolveSession& load(const matrix::CsrMatrix& m);

  /// Builds the (possibly nested) solver from its JSON config — strictly
  /// validated, see makeSolver(). Call before solve(); reconfiguring after
  /// a solve is an error (the emitted program is tied to the solver).
  SolveSession& configure(const json::Value& solverConfig);
  SolveSession& configure(const std::string& solverJsonText);
  // json::Value converts from const char* too — disambiguate string literals
  // toward the parse-then-build path.
  SolveSession& configure(const char* solverJsonText) {
    return configure(std::string(solverJsonText));
  }

  /// Attaches a fault-injection plan applied to every subsequent solve. The
  /// plan is rebuilt from this JSON for every solve attempt (FaultPlan rules
  /// are stateful — one-shot activations, RNG), which keeps remap recovery
  /// deterministic: identical plan + seed gives identical fault logs.
  SolveSession& withFaultPlan(const json::Value& planConfig);

  /// Replaces the matrix coefficients, keeping the emitted program: the new
  /// matrix must have the identical sparsity structure (same rowPtr/colIdx)
  /// as the loaded one. The next solve() re-uploads the refreshed staging,
  /// so repeat solves against updated values skip partitioning and program
  /// emission entirely. NOT sound for chains with factorisation
  /// preconditioners ((D)ILU, Gauss-Seidel) — their factors were computed
  /// from the old values at emission time (see DistMatrix::updateValues);
  /// the plan cache refuses value-only reuse for those chains.
  SolveSession& updateMatrixValues(const matrix::CsrMatrix& m);

  /// Cooperative cancellation: consulted after every committed superstep of
  /// every subsequent solve with the total simulated cycles the running
  /// solve() has accumulated (carried across hard-fault remap attempts).
  /// Returning a non-null reason stops the solve — the engine finishes the
  /// current superstep, then throws support::CancelledError carrying the
  /// reason; overshoot past a deadline is bounded by one superstep. Pass
  /// nullptr to detach.
  using CancelCheck = std::function<const char*(double simCycles)>;
  void setCancelCheck(CancelCheck check) { cancel_ = std::move(check); }

  /// Re-binds / releases the session's thread-local dsl::Context on the
  /// calling thread. A session built on one thread can be leased by another
  /// (pooled service workers): bind() before configure()/solve()/
  /// updateMatrixValues(), unbind() before handing it on. At most one
  /// context may be bound per thread at a time.
  void bind();
  void unbind();

  /// Opts every subsequent solve into tile-level profiling: per-tile cycle
  /// attribution per category, the tile×tile traffic matrix and the SRAM
  /// snapshot. A fresh report is collected per solve (accumulating across
  /// hard-fault remap attempts within it) and attached to the Result.
  SolveSession& enableTileProfile() {
    tileProfileEnabled_ = true;
    return *this;
  }

  /// Everything a solve produces, copied out of the device state.
  struct Result {
    SolveResult solve;                     // structured outcome
    std::vector<double> x;                 // solution, global row order
    std::vector<IterationRecord> history;  // convergence samples
    double simulatedSeconds = 0.0;         // wall clock on the simulated IPU
    /// Simulated cycles the whole solve took, summed across hard-fault
    /// remap attempts (simulatedSeconds covers the final attempt only).
    double simCycles = 0.0;
    /// Tile-level report of this solve; null unless enableTileProfile().
    std::shared_ptr<support::TileProfile> tileProfile;
  };

  /// Runs the configured solver on a fresh Engine. The program is emitted
  /// once (first call) and re-executed on subsequent calls; the trace sink
  /// is cleared per solve, so trace() always shows the latest one.
  Result solve(std::span<const double> rhs);

  /// The merged execution timeline of the last solve.
  const support::TraceSink& trace() const { return trace_; }
  /// Mutable sink access for owners that stamp job ids onto the timeline
  /// (see TraceSink::setJobId / SolverService).
  support::TraceSink& traceSink() { return trace_; }
  /// Convenience: the last solve's trace in Chrome trace_event JSON
  /// (load into chrome://tracing or Perfetto).
  json::Value traceChromeJson() const { return support::traceToChromeJson(trace_); }

  /// Cycle profile of the last solve.
  const ipu::Profile& profile() const;

  /// Tile-level report of the last solve (null unless enableTileProfile()
  /// was called before it).
  const support::TileProfile* tileProfile() const {
    return tileProfile_.get();
  }

  Solver& solver();
  DistMatrix& matrix();
  /// Engine of the last solve (valid until the next solve()).
  graph::Engine& engine();

  /// Simulated cycles accumulated by the most recent solve() call, summed
  /// across hard-fault remap attempts. Unlike Result::simCycles this is
  /// also valid after solve() threw (CancelledError, HardFaultError, ...):
  /// the failing attempt's engine clock is folded in before the throw, so
  /// deadline baselines never under-count a solve that remapped mid-flight.
  double lastSolveCycles() const { return solveCycles_; }

  const SessionOptions& options() const { return options_; }
  /// The solver JSON this session was configure()d with ({} before).
  const json::Value& solverConfig() const { return solverConfig_; }
  bool emitted() const { return emitted_; }
  /// Largest per-tile SRAM allocation of the built graph, in bytes — what
  /// admission control charges a warm pipeline against the SRAM pool.
  std::size_t sramPeakBytes() const;

  /// Tiles the watchdog confirmed dead and the remap path excluded from the
  /// partition (ascending). Empty until a hard-fault recovery happened.
  const std::vector<std::size_t>& blacklistedTiles() const {
    return blacklist_;
  }
  /// Chips the watchdog escalation declared dead and the recovery path
  /// shrank out of the topology (ascending). Empty until a whole-chip loss
  /// happened. The session's resolved topology (options().topology) carries
  /// the same set — and a new fingerprint — after the shrink.
  const std::vector<std::size_t>& deadIpus() const {
    return options_.topology->deadIpus();
  }
  /// Health report of the last solve's watchdog ({} when no watchdog ran).
  json::Value healthReport() const;

 private:
  /// (Re)builds context, layout (over surviving tiles), DistMatrix and —
  /// when configured — the solver. Tears the old pipeline down first in
  /// dependency order; the next solve() re-emits the program.
  void buildPipeline();

  SessionOptions options_;
  matrix::GeneratedMatrix m_;
  bool loaded_ = false;
  json::Value solverConfig_;
  bool configured_ = false;
  std::optional<json::Value> faultPlanJson_;
  std::vector<std::size_t> blacklist_;
  std::unique_ptr<dsl::Context> ctx_;
  std::unique_ptr<DistMatrix> A_;
  std::unique_ptr<Solver> solver_;
  std::unique_ptr<graph::Engine> engine_;
  std::unique_ptr<ipu::HealthMonitor> health_;
  std::optional<ipu::FaultPlan> faultPlan_;
  std::optional<Tensor> x_, b_;
  support::TraceSink trace_;
  CancelCheck cancel_;
  double solveCycles_ = 0.0;  // see lastSolveCycles()
  bool tileProfileEnabled_ = false;
  std::shared_ptr<support::TileProfile> tileProfile_;
  bool emitted_ = false;
};

}  // namespace graphene::solver
