// Error-free transforms (EFTs) — the building blocks of double-word
// arithmetic.
//
// An EFT computes, for a floating-point operation ∘, the rounded result
// fl(a ∘ b) *and* the exact rounding error, such that
//   a ∘ b = fl(a ∘ b) + err   holds exactly in floating point.
//
// References:
//   - Knuth, TAOCP vol. 2 (TwoSum)
//   - Dekker 1971 (FastTwoSum, splitting)
//   - Joldes, Muller, Popescu 2017 (usage in double-word arithmetic)
//
// IMPORTANT: these algorithms require strict IEEE-754 semantics. The build
// must not enable -ffast-math or any contraction that is not an explicit
// std::fma call.
#pragma once

#include <cmath>
#include <limits>
#include <type_traits>

namespace graphene::twofloat {

/// Result pair of an error-free transform: `value + error` equals the exact
/// result of the transformed operation.
template <typename T>
struct Eft {
  T value;
  T error;
};

/// TwoSum (Knuth): s = fl(a+b), err exact. 6 flops, no precondition.
template <typename T>
constexpr Eft<T> twoSum(T a, T b) {
  static_assert(std::is_floating_point_v<T>);
  T s = a + b;
  T bb = s - a;
  T err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

/// FastTwoSum (Dekker): 3 flops; requires |a| >= |b| (or a == 0).
template <typename T>
constexpr Eft<T> fastTwoSum(T a, T b) {
  static_assert(std::is_floating_point_v<T>);
  T s = a + b;
  T err = b - (s - a);
  return {s, err};
}

/// Dekker's constant for splitting a T into two half-width parts:
/// 2^ceil(p/2) + 1 where p is the precision of T. Computed at compile time,
/// so the library works with any IEEE float type (float: 4097, double: 2^27+1).
template <typename T>
constexpr T splitterConstant() {
  constexpr int p = std::numeric_limits<T>::digits;
  constexpr int s = (p + 1) / 2;
  T result = 1;
  for (int i = 0; i < s; ++i) result *= T(2);
  return result + T(1);
}

/// Dekker split: x = hi + lo where hi has at most ceil(p/2) significant bits.
template <typename T>
constexpr Eft<T> split(T x) {
  constexpr T splitter = splitterConstant<T>();
  T c = splitter * x;
  T hi = c - (c - x);
  T lo = x - hi;
  return {hi, lo};
}

/// TwoProd via FMA: p = fl(a*b), err = fma(a, b, -p) exact. 2 flops.
template <typename T>
inline Eft<T> twoProdFma(T a, T b) {
  T p = a * b;
  T err = std::fma(a, b, -p);
  return {p, err};
}

/// TwoProd via Dekker splitting (for targets without FMA). 17 flops.
template <typename T>
constexpr Eft<T> twoProdDekker(T a, T b) {
  T p = a * b;
  Eft<T> as = split(a);
  Eft<T> bs = split(b);
  T err = ((as.value * bs.value - p) + as.value * bs.error +
           as.error * bs.value) +
          as.error * bs.error;
  return {p, err};
}

/// Default TwoProd: FMA-based (the IPU has an FMA unit; so do all hosts we
/// target).
template <typename T>
inline Eft<T> twoProd(T a, T b) {
  return twoProdFma(a, b);
}

}  // namespace graphene::twofloat
