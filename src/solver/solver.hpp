// Solver interface (paper §V).
//
// "A key feature is the modular design, which allows for nested solver
// configurations — any solver can serve as a preconditioner for another."
// A Solver emits, via symbolic execution, the program computing
// z ≈ A⁻¹ r from a zero initial guess. Used at the top level it is the
// solve; used inside another solver it is the preconditioner application.
//
// The hierarchy is configured through JSON (§V): see makeSolver().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "solver/dist_matrix.hpp"
#include "support/json.hpp"

namespace graphene::solver {

/// One host-recorded convergence sample.
struct IterationRecord {
  std::size_t iteration = 0;  // cumulative inner-iteration count
  double residual = 0.0;      // relative residual ‖r‖/‖b‖
};

class Solver {
 public:
  virtual ~Solver() = default;

  virtual std::string name() const = 0;

  /// Emits one-time preparation (e.g. the (D)ILU factorisation). Idempotent:
  /// composite solvers call this before building loop bodies so setup steps
  /// are scheduled exactly once, outside any loop.
  void ensureSetup(DistMatrix& a) {
    if (!setupDone_) {
      setupDone_ = true;
      setup(a);
    }
  }

  /// Emits the program computing z ≈ A⁻¹ r with zero initial guess.
  /// z and r are float32 vectors with the matrix's owned mapping.
  virtual void apply(DistMatrix& a, Tensor& z, Tensor& r) = 0;

  /// Residual history recorded by host callbacks during execution
  /// (top-level/iterative solvers only; empty for preconditioners).
  const std::vector<IterationRecord>& history() const { return *history_; }
  void clearHistory() { history_->clear(); }

 protected:
  virtual void setup(DistMatrix& a) { (void)a; }

  std::shared_ptr<std::vector<IterationRecord>> history_ =
      std::make_shared<std::vector<IterationRecord>>();

 private:
  bool setupDone_ = false;
};

/// Builds a (possibly nested) solver from a JSON configuration, e.g.:
///   {
///     "type": "mpir",
///     "extendedType": "doubleword",
///     "maxRefinements": 20, "tolerance": 1e-13,
///     "inner": {
///       "type": "bicgstab", "maxIterations": 100, "tolerance": 0,
///       "preconditioner": {"type": "ilu"}
///     }
///   }
/// Types: bicgstab, gauss-seidel, jacobi, ilu, dilu, mpir, identity.
std::unique_ptr<Solver> makeSolver(const json::Value& config);

/// Convenience: parses the JSON text, then builds the solver.
std::unique_ptr<Solver> makeSolverFromString(const std::string& jsonText);

}  // namespace graphene::solver
