// SolverService — the robust serving front-end over SolveSession.
//
// Covers: the submit → wait flow across worker threads; plan-cache hits
// with bit-identical solutions vs an uncached solve; value-only matrix
// updates (and their refusal for factorisation chains); simulated-cycle
// deadlines that stop a solve deterministically; cooperative cancellation
// of queued jobs; SRAM + queue-depth admission control; the per-structure
// circuit breaker incl. the single-flight half-open probe and its
// reopen-on-failure path; graceful degradation on the final retry; typed
// verdicts for matrices whose pipeline cannot even be built; bounded
// retention of terminal results; cancel/deadline cutting the retry backoff
// short; strict ServiceOptions/JSON validation naming the offending key;
// and the service.* counters in the Prometheus exposition.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "graphene.hpp"

using namespace graphene;
using namespace graphene::solver;

namespace {

std::string messageOf(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

json::Value cgConfig() {
  return json::parse(R"({"type": "cg", "tolerance": 1e-6,
                         "maxIterations": 200})");
}

/// A fault plan that corrupts the residual on *every* superstep with a
/// high-exponent bit flip. The corruption outlasts any restart budget, so
/// CG (and the degraded BiCGStab) end in a NanDetected / Diverged verdict
/// deterministically.
json::Value poisonPlan() {
  return json::parse(R"({"seed": 7, "faults": [
    {"type": "bitflip", "tensor": "resid", "bit": 30,
     "probability": 1.0, "count": 100000, "skip": 0}]})");
}

std::vector<double> ones(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

}  // namespace

TEST(SolverService, SubmitWaitSolvesAcrossWorkers) {
  SolverService service({.workers = 2, .tiles = 4});
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(service.submit(g, cgConfig(), ones(n)));
  }
  for (std::size_t id : ids) {
    JobResult r = service.wait(id);
    EXPECT_FALSE(r.typedError) << r.message;
    EXPECT_EQ(r.solve.status, SolveStatus::Converged);
    EXPECT_EQ(r.x.size(), n);
    EXPECT_GT(r.simCycles, 0.0);
  }
  // wait() is repeatable: the result is retained.
  EXPECT_EQ(service.wait(ids[0]).solve.status, SolveStatus::Converged);

  EXPECT_GE(service.metrics().counter("service.jobs.accepted"), 4.0);
  EXPECT_GE(service.metrics().counter("service.jobs.completed"), 4.0);

  service.shutdown();
  EXPECT_EQ(service.pooledPipelines(), 0u);  // engine pool reclaimed
}

TEST(SolverService, PlanCacheHitIsBitIdentical) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  // Uncached reference: plan cache disabled entirely.
  SolverService cold({.workers = 1, .tiles = 4, .planCacheCapacity = 0});
  JobResult ref = cold.solve(g, cgConfig(), ones(n));
  ASSERT_EQ(ref.solve.status, SolveStatus::Converged);
  EXPECT_FALSE(ref.planCacheHit);
  EXPECT_EQ(cold.planCacheStats().hits, 0u);

  // Cached service: first solve builds, second leases the warm pipeline.
  SolverService warm({.workers = 1, .tiles = 4});
  JobResult first = warm.solve(g, cgConfig(), ones(n));
  JobResult second = warm.solve(g, cgConfig(), ones(n));
  EXPECT_FALSE(first.planCacheHit);
  EXPECT_TRUE(second.planCacheHit);
  EXPECT_GT(warm.planCacheStats().hits, 0u);
  EXPECT_EQ(warm.pooledPipelines(), 1u);

  // The warm path re-executes the identical program: bit-identical x, both
  // against the cold build and against the cache-miss build.
  EXPECT_EQ(first.x, ref.x);
  EXPECT_EQ(second.x, ref.x);
}

TEST(SolverService, ValueOnlyUpdateReusesThePlan) {
  auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  SolverService service({.workers = 1, .tiles = 4});
  ASSERT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
            SolveStatus::Converged);

  // Same structure, scaled coefficients: the plan is leased and the values
  // refreshed in place — no rebuild, still the right answer for the *new*
  // system (x scales by 1/2 for A → 2A).
  auto scaled = g;
  {
    auto vals = scaled.matrix.values();
    for (double& v : vals) v *= 2.0;
  }
  JobResult r = service.solve(scaled, cgConfig(), ones(n));
  EXPECT_EQ(r.solve.status, SolveStatus::Converged);
  EXPECT_TRUE(r.planCacheHit);

  std::vector<double> ax(n);
  scaled.matrix.spmv(r.x, ax);
  double maxErr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    maxErr = std::max(maxErr, std::abs(ax[i] - 1.0));
  }
  EXPECT_LT(maxErr, 1e-3);
}

TEST(SolverService, FactorisationChainsRefuseValueOnlyReuse) {
  auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();
  const json::Value config = json::parse(R"({
    "type": "cg", "tolerance": 1e-6, "maxIterations": 200,
    "preconditioner": {"type": "ilu"}})");
  ASSERT_TRUE(configBakesValues(config));

  SolverService service({.workers = 1, .tiles = 4});
  ASSERT_EQ(service.solve(g, config, ones(n)).solve.status,
            SolveStatus::Converged);

  auto scaled = g;
  {
    auto vals = scaled.matrix.values();
    for (double& v : vals) v *= 2.0;
  }
  // ILU baked the old values into its factors at emission: value-only reuse
  // must miss and build a fresh pipeline — which still solves correctly.
  const std::size_t missesBefore = service.planCacheStats().misses;
  JobResult r = service.solve(scaled, config, ones(n));
  EXPECT_EQ(r.solve.status, SolveStatus::Converged);
  EXPECT_FALSE(r.planCacheHit);
  EXPECT_GT(service.planCacheStats().misses, missesBefore);

  std::vector<double> ax(n);
  scaled.matrix.spmv(r.x, ax);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[i], 1.0, 1e-3);
  }
}

TEST(SolverService, CycleDeadlineStopsTheSolveDeterministically) {
  const auto g = matrix::poisson2d5(12, 12);
  const std::size_t n = g.matrix.rows();

  // Full-length reference run to learn the total cost.
  SolverService service({.workers = 1, .tiles = 4, .planCacheCapacity = 0});
  JobResult full = service.solve(g, cgConfig(), ones(n));
  ASSERT_EQ(full.solve.status, SolveStatus::Converged);
  ASSERT_GT(full.simCycles, 0.0);

  // Half the budget: the solve must stop with DeadlineExceeded before
  // running to completion — overshoot bounded by one superstep, so well
  // under the full cost.
  const double deadline = full.simCycles / 2;
  JobResult cut = service.solve(g, cgConfig(), ones(n),
                                {.deadlineCycles = deadline});
  EXPECT_EQ(cut.solve.status, SolveStatus::DeadlineExceeded);
  EXPECT_LT(cut.simCycles, full.simCycles);
  EXPECT_GE(cut.simCycles, deadline);  // it ran *until* the deadline

  // Simulated deadlines are deterministic: the same budget stops at the
  // same superstep with the same cycle count on every run.
  JobResult again = service.solve(g, cgConfig(), ones(n),
                                  {.deadlineCycles = deadline});
  EXPECT_EQ(again.solve.status, SolveStatus::DeadlineExceeded);
  EXPECT_EQ(again.simCycles, cut.simCycles);

  EXPECT_GE(service.metrics().counter("service.jobs.deadline_exceeded"), 2.0);
}

TEST(SolverService, CancelQueuedJob) {
  const auto g = matrix::poisson2d5(16, 16);
  const std::size_t n = g.matrix.rows();

  SolverService service({.workers = 1, .tiles = 4});
  // Occupy the lone worker, then cancel the job stuck behind it.
  const std::size_t running = service.submit(g, cgConfig(), ones(n));
  const std::size_t queued = service.submit(g, cgConfig(), ones(n));
  EXPECT_TRUE(service.cancel(queued));
  EXPECT_FALSE(service.cancel(queued + 100));  // unknown id

  JobResult r = service.wait(queued);
  EXPECT_EQ(r.solve.status, SolveStatus::Cancelled);
  EXPECT_EQ(service.wait(running).solve.status, SolveStatus::Converged);
}

TEST(SolverService, AdmissionRejectsWhatCanNeverFit) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  // A 1-byte SRAM pool: every job's estimate exceeds headroom × pool, so
  // admission rejects at submit — typed, not queued forever.
  SolverService service({.workers = 1,
                         .tiles = 4,
                         .admission = {.maxQueueDepth = 4, .sramPoolBytes = 1}});
  JobResult r = service.solve(g, cgConfig(), ones(n));
  EXPECT_EQ(r.solve.status, SolveStatus::AdmissionRejected);
  EXPECT_NE(r.message.find("SRAM"), std::string::npos) << r.message;
  EXPECT_GE(service.metrics().counter("service.jobs.rejected"), 1.0);
}

TEST(SolverService, RetriesThenDegradesOnPersistentFaults) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  SolverService service({.workers = 1,
                         .tiles = 4,
                         .retry = {.maxRetries = 2, .backoffBaseMs = 0.0,
                                   .backoffMaxMs = 0.0, .jitter = 0.0}});
  // The poison plan rides along on every attempt: transient verdicts are
  // retried, the final attempt runs degraded, the job still fails *typed*.
  JobResult r = service.solve(g, cgConfig(), ones(n),
                              {.faultPlan = poisonPlan()});
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.planCacheHit);  // fault-injected jobs are never pooled
  EXPECT_TRUE(r.typedError || r.solve.status == SolveStatus::Diverged ||
              r.solve.status == SolveStatus::NanDetected ||
              r.solve.status == SolveStatus::Breakdown)
      << toString(r.solve.status) << " " << r.message;
  EXPECT_GE(service.metrics().counter("service.jobs.retried"), 2.0);
  EXPECT_GE(service.metrics().counter("service.jobs.degraded"), 1.0);
}

TEST(SolverService, BuildFailureEndsTypedAndServiceStaysLive) {
  // A matrix the pipeline cannot build (zero diagonal — modified CRS
  // requires a nonzero one) must end in a typed verdict, not an exception
  // escaping the worker thread. submit() only pre-validates the solver
  // config, so the build failure surfaces inside the worker.
  matrix::GeneratedMatrix bad;
  bad.name = "zero-diagonal";
  bad.matrix = matrix::CsrMatrix::fromTriplets(
      4, 4,
      {{0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0},
       {1, 2, -1.0}, {2, 1, -1.0}, {2, 3, -1.0},  // A(2,2) missing
       {3, 2, -1.0}, {3, 3, 2.0}});
  ASSERT_FALSE(bad.matrix.hasFullDiagonal());

  SolverService service({.workers = 1, .tiles = 4});
  JobResult r = service.solve(bad, cgConfig(), ones(4));
  EXPECT_TRUE(r.typedError);
  EXPECT_NE(r.message.find("diagonal"), std::string::npos) << r.message;
  // Deterministic build failures are not retried: the build would fail
  // identically on every attempt.
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_GE(service.metrics().counter("service.jobs.failed"), 1.0);

  // The worker survived; healthy traffic flows as before.
  const auto g = matrix::poisson2d5(8, 8);
  EXPECT_EQ(service.solve(g, cgConfig(), ones(g.matrix.rows())).solve.status,
            SolveStatus::Converged);
}

TEST(SolverService, ResultRetentionIsBounded) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  SolverService service({.workers = 1, .tiles = 4, .maxRetainedResults = 2});
  // Submit-then-wait one job at a time: a job can only be reaped by a
  // *later* job's completion, so each wait() here observes its own result
  // before any reap can touch it — regardless of how fast the worker runs.
  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(service.submit(g, cgConfig(), ones(n)));
    EXPECT_EQ(service.wait(ids.back()).solve.status, SolveStatus::Converged);
  }
  // Jobs 0 and 1 fell out of the 2-result retention window when jobs 2 and
  // 3 finished. The reap runs on the worker thread just after the result is
  // published, so poll briefly rather than assuming it already landed.
  const auto waitReleased = [&](std::size_t id) {
    for (int tries = 0; tries < 500; ++tries) {
      const std::string msg = messageOf([&] { (void)service.wait(id); });
      if (!msg.empty()) return msg;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return std::string("job was never released");
  };
  const std::string released = waitReleased(ids[0]);
  EXPECT_NE(released.find("already released"), std::string::npos) << released;
  EXPECT_NE(released.find("maxRetainedResults"), std::string::npos);
  EXPECT_EQ(service.wait(ids[2]).solve.status, SolveStatus::Converged);
  EXPECT_EQ(service.wait(ids[3]).solve.status, SolveStatus::Converged);
  // A never-issued id still reads as unknown, not released.
  EXPECT_NE(messageOf([&] { (void)service.wait(9999); }).find("unknown"),
            std::string::npos);
}

TEST(SolverService, CancelCutsRetryBackoffShort) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  // A minute of backoff between attempts: without the interruptible wait a
  // cancelled job would sleep it out before noticing.
  SolverService service({.workers = 1,
                         .tiles = 4,
                         .retry = {.maxRetries = 3, .backoffBaseMs = 60000.0,
                                   .backoffMaxMs = 60000.0, .jitter = 0.0}});
  const auto start = std::chrono::steady_clock::now();
  const std::size_t id =
      service.submit(g, cgConfig(), ones(n), {.faultPlan = poisonPlan()});
  // Land the cancel mid-first-attempt or mid-backoff — both must cut the
  // job short with a Cancelled verdict.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.cancel(id);
  JobResult r = service.wait(id);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_EQ(r.solve.status, SolveStatus::Cancelled);
  EXPECT_LT(elapsed.count(), 30.0);  // nowhere near the 60 s backoff
}

TEST(SolverService, WallDeadlineCapsRetryBackoff) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  SolverService service({.workers = 1,
                         .tiles = 4,
                         .retry = {.maxRetries = 3, .backoffBaseMs = 60000.0,
                                   .backoffMaxMs = 60000.0, .jitter = 0.0}});
  const auto start = std::chrono::steady_clock::now();
  // The poisoned attempt fails transiently; the wall deadline expires long
  // before the 60 s backoff would — the job must finish DeadlineExceeded
  // without sleeping the interval out or starting another attempt.
  JobResult r = service.solve(g, cgConfig(), ones(n),
                              {.deadlineSeconds = 1.5,
                               .faultPlan = poisonPlan()});
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  EXPECT_EQ(r.solve.status, SolveStatus::DeadlineExceeded);
  EXPECT_LT(elapsed.count(), 30.0);
}

TEST(SolverService, ProbeFailureReopensTheCircuit) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  SolverService service(
      {.workers = 1,
       .tiles = 4,
       .retry = {.maxRetries = 0},
       .breaker = {.failuresToOpen = 1, .openForJobs = 2},
       .degradation = {.enabled = false}});

  // Open the circuit, drain the quarantine window.
  EXPECT_NE(service.solve(g, cgConfig(), ones(n), {.faultPlan = poisonPlan()})
                .solve.status,
            SolveStatus::Converged);
  EXPECT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
            SolveStatus::CircuitOpen);
  EXPECT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
            SolveStatus::CircuitOpen);

  // The half-open probe fails → the quarantine re-opens for another full
  // window before the next probe.
  EXPECT_NE(service.solve(g, cgConfig(), ones(n), {.faultPlan = poisonPlan()})
                .solve.status,
            SolveStatus::Converged);
  EXPECT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
            SolveStatus::CircuitOpen);
  EXPECT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
            SolveStatus::CircuitOpen);

  // This probe succeeds → closed, traffic flows.
  EXPECT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
            SolveStatus::Converged);
  EXPECT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
            SolveStatus::Converged);
}

TEST(SolverService, CircuitBreakerOpensAndProbesHalfOpen) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  SolverService service(
      {.workers = 1,
       .tiles = 4,
       .retry = {.maxRetries = 0},
       .breaker = {.failuresToOpen = 1, .openForJobs = 1},
       .degradation = {.enabled = false}});

  // 1: fails hard → breaker opens for this structure fingerprint.
  JobResult fail = service.solve(g, cgConfig(), ones(n),
                                 {.faultPlan = poisonPlan()});
  EXPECT_NE(fail.solve.status, SolveStatus::Converged);

  // 2: rejected without running — the circuit is open.
  JobResult open = service.solve(g, cgConfig(), ones(n));
  EXPECT_EQ(open.solve.status, SolveStatus::CircuitOpen);
  EXPECT_EQ(open.attempts, 0u);

  // 3: the half-open probe runs for real; healthy again → circuit closes.
  JobResult probe = service.solve(g, cgConfig(), ones(n));
  EXPECT_EQ(probe.solve.status, SolveStatus::Converged);

  // 4: closed: jobs flow normally.
  EXPECT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
            SolveStatus::Converged);
}

TEST(SolverService, OptionsValidationNamesTheKeyAndRange) {
  EXPECT_NE(messageOf([] { SolverService s({.workers = 0}); })
                .find("service.workers"),
            std::string::npos);
  EXPECT_NE(messageOf([] {
              SolverService s({.retry = {.backoffFactor = 0.5}});
            }).find("service.retry.backoffFactor"),
            std::string::npos);
  EXPECT_NE(messageOf([] { SolverService s({.retry = {.jitter = 1.0}}); })
                .find("[0, 1)"),
            std::string::npos);
  EXPECT_NE(messageOf([] {
              SolverService s({.admission = {.maxQueueDepth = 0}});
            }).find("service.admission.maxQueueDepth"),
            std::string::npos);
  EXPECT_NE(messageOf([] {
              SolverService s({.admission = {.headroom = 1.5}});
            }).find("(0, 1]"),
            std::string::npos);
  EXPECT_NE(messageOf([] {
              SolverService s({.defaultDeadlineCycles = -1});
            }).find("service.defaultDeadlineCycles"),
            std::string::npos);
  EXPECT_NE(messageOf([] {
              SolverService s({.breaker = {.failuresToOpen = 0}});
            }).find("service.breaker.failuresToOpen"),
            std::string::npos);
  // Cross-field: a retry ladder that sleeps longer than the wall deadline
  // names both knobs.
  const std::string msg = messageOf([] {
    SolverService s({.defaultDeadlineSeconds = 0.001,
                     .retry = {.maxRetries = 10, .backoffBaseMs = 100.0,
                               .backoffMaxMs = 100.0}});
  });
  EXPECT_NE(msg.find("retry budget exceeds the deadline"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("defaultDeadlineSeconds"), std::string::npos);
}

TEST(SolverService, JsonOptionsValidationAndRoundTrip) {
  // Unknown keys name themselves and list the valid ones.
  EXPECT_NE(messageOf([] {
              serviceOptionsFromJson(json::parse(R"({"wrokers": 4})"));
            }).find("wrokers"),
            std::string::npos);
  EXPECT_NE(messageOf([] {
              serviceOptionsFromJson(
                  json::parse(R"({"retry": {"backof": 1}})"));
            }).find("service.retry"),
            std::string::npos);
  // Wrong JSON type names the key and the expected type.
  EXPECT_NE(messageOf([] {
              serviceOptionsFromJson(json::parse(R"({"retry": 3})"));
            }).find("retry"),
            std::string::npos);
  // Range violations flow through the same validation as the struct path.
  EXPECT_NE(messageOf([] {
              serviceOptionsFromJson(
                  json::parse(R"({"retry": {"backoffFactor": 0.25}})"));
            }).find("backoffFactor"),
            std::string::npos);

  const ServiceOptions o = serviceOptionsFromJson(json::parse(R"({
    "workers": 3, "tiles": 16, "planCacheCapacity": 5,
    "defaultDeadlineCycles": 1e9,
    "retry": {"maxRetries": 1, "backoffBaseMs": 2.5},
    "admission": {"maxQueueDepth": 7, "sramPoolBytes": 123456},
    "breaker": {"failuresToOpen": 2, "openForJobs": 4},
    "degradation": {"enabled": false}})"));
  EXPECT_EQ(o.workers, 3u);
  EXPECT_EQ(o.tiles, 16u);
  EXPECT_EQ(o.planCacheCapacity, 5u);
  EXPECT_EQ(o.defaultDeadlineCycles, 1e9);
  EXPECT_EQ(o.retry.maxRetries, 1u);
  EXPECT_EQ(o.retry.backoffBaseMs, 2.5);
  EXPECT_EQ(o.admission.maxQueueDepth, 7u);
  EXPECT_EQ(o.admission.sramPoolBytes, 123456u);
  EXPECT_EQ(o.breaker.failuresToOpen, 2u);
  EXPECT_EQ(o.breaker.openForJobs, 4u);
  EXPECT_FALSE(o.degradation.enabled);
}

TEST(SolverService, MetricsAndJobTimelineAreExposed) {
  const auto g = matrix::poisson2d5(8, 8);
  const std::size_t n = g.matrix.rows();

  SolverService service({.workers = 2, .tiles = 4});
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(service.solve(g, cgConfig(), ones(n)).solve.status,
              SolveStatus::Converged);
  }

  // Prometheus exposition carries the service counters (sanitised names).
  const std::string text = service.metricsText();
  EXPECT_NE(text.find("service_jobs_accepted"), std::string::npos) << text;
  EXPECT_NE(text.find("service_jobs_completed"), std::string::npos);
  EXPECT_NE(text.find("service_plan_cache_hits"), std::string::npos);
  EXPECT_NE(text.find("service_plan_cache_misses"), std::string::npos);

  // The job timeline saw every lifecycle event, stamped with stable ids.
  const support::TraceSink timeline = service.traceSnapshot();
  EXPECT_GE(timeline.jobEventCount(), 6u);  // accepted + done per job
  EXPECT_EQ(timeline.jobsSeen().size(), 3u);
}

// GRAPHENE_TEST_POD reaches every service-built pipeline: the ctor resolves
// the pod once (explicit topology > env > plain tiles) and service plans
// carry that pod's topology fingerprint from then on.
TEST(SolverService, PodEnvResolvesServiceTopology) {
  const char* ambientRaw = std::getenv("GRAPHENE_TEST_POD");
  const std::string ambient = ambientRaw != nullptr ? ambientRaw : "";
  ::setenv("GRAPHENE_TEST_POD", "4", 1);

  {  // Env splits the tile budget into a 4-chip pod.
    SolverService service({.workers = 1, .tiles = 32});
    EXPECT_EQ(service.resolvedTopology().numIpus(), 4u);
    EXPECT_EQ(service.resolvedTopology().fingerprint(),
              ipu::Topology::pod(4, 8).fingerprint());
    // ...and jobs actually run on it.
    const auto g = matrix::poisson2d5(8, 8);
    JobResult r = service.solve(g, cgConfig(), ones(g.matrix.rows()));
    EXPECT_EQ(r.solve.status, SolveStatus::Converged);
    service.shutdown();
  }
  {  // An explicit topology wins over the environment.
    SolverService service({.workers = 1,
                           .tiles = 32,
                           .topology = ipu::Topology::pod(2, 16)});
    EXPECT_EQ(service.resolvedTopology().numIpus(), 2u);
    EXPECT_EQ(service.resolvedTopology().tilesPerIpu(), 16u);
    service.shutdown();
  }

  if (ambient.empty()) {
    ::unsetenv("GRAPHENE_TEST_POD");
  } else {
    ::setenv("GRAPHENE_TEST_POD", ambient.c_str(), 1);
  }
}

// The pod flagship, end to end through the serving layer: a chip dies
// mid-job, the session shrinks the topology and converges, and the service
// adopts the shrink — every plan cached against the healthy pod's
// fingerprint is invalidated, follow-up jobs build against the survivors.
TEST(SolverService, ChipDeathShrinksPodAndInvalidatesStalePlans) {
  const auto g = matrix::poisson2d5(10, 10);
  const std::size_t n = g.matrix.rows();
  SolverService service(
      {.workers = 1, .tiles = 32, .topology = ipu::Topology::pod(4, 8)});

  // Job 1: a clean solve on the healthy pod warms the plan cache.
  JobResult warm = service.solve(g, cgConfig(), ones(n));
  ASSERT_EQ(warm.solve.status, SolveStatus::Converged);
  ASSERT_GE(service.planCacheStats().misses, 1u);  // entry inserted

  // Job 2: same matrix, chip 1 dies mid-solve. Fault-plan jobs bypass the
  // cache, so the warm healthy-pod plan sits idle — and stale.
  JobResult faulted =
      service.solve(g, cgConfig(), ones(n),
                    {.faultPlan = json::parse(R"({"faults": [
                        {"type": "ipu-dead", "ipu": 1, "superstep": 30}]})")});
  EXPECT_FALSE(faulted.typedError) << faulted.message;
  EXPECT_EQ(faulted.solve.status, SolveStatus::Converged);  // typed verdict

  // The service now serves from the shrunken pod...
  EXPECT_EQ(service.resolvedTopology().numAliveIpus(), 3u);
  EXPECT_EQ(service.resolvedTopology().deadIpus(),
            (std::vector<std::size_t>{1}));
  EXPECT_GE(service.metrics().counter("service.topology.shrinks"), 1.0);
  // ...and the healthy-pod plan can never be leased again.
  EXPECT_GE(service.planCacheStats().invalidations, 1u);

  // A follow-up clean job misses the cache and converges on the survivors.
  const auto statsBefore = service.planCacheStats();
  JobResult after = service.solve(g, cgConfig(), ones(n));
  EXPECT_EQ(after.solve.status, SolveStatus::Converged);
  EXPECT_FALSE(after.planCacheHit);
  EXPECT_GT(service.planCacheStats().misses, statsBefore.misses);

  service.shutdown();
  EXPECT_EQ(service.pooledPipelines(), 0u);
}
