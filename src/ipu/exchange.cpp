#include "ipu/exchange.hpp"

#include <algorithm>
#include <map>

#include "support/error.hpp"
#include "support/tile_profile.hpp"

namespace graphene::ipu {

ExchangeStats priceExchange(const IpuTarget& target,
                            const std::vector<Transfer>& transfers,
                            support::TileTrafficMatrix* traffic) {
  ExchangeStats stats;
  if (transfers.empty()) return stats;

  const std::size_t nTiles = target.totalTiles();
  std::vector<double> sendBytes(nTiles, 0.0);
  std::vector<double> recvBytes(nTiles, 0.0);
  std::vector<std::size_t> instrs(nTiles, 0);
  // Bytes crossing each ordered (srcIpu, dstIpu) link.
  std::map<std::pair<std::size_t, std::size_t>, double> linkBytes;

  for (const Transfer& t : transfers) {
    GRAPHENE_CHECK(t.srcTile < nTiles, "transfer source tile out of range");
    const std::size_t srcIpu = target.ipuOfTile(t.srcTile);
    bool remoteDst = false;
    // Which IPUs need the payload over a link (once per destination IPU —
    // the gateway fans out on the remote chip).
    std::vector<bool> ipuSeen(target.numIpus, false);
    for (std::size_t dst : t.dstTiles) {
      GRAPHENE_CHECK(dst < nTiles, "transfer destination tile out of range");
      if (dst == t.srcTile) continue;  // tile-local copy
      remoteDst = true;
      recvBytes[dst] += static_cast<double>(t.bytes);
      const std::size_t dstIpu = target.ipuOfTile(dst);
      if (dstIpu != srcIpu && !ipuSeen[dstIpu]) {
        ipuSeen[dstIpu] = true;
        linkBytes[{srcIpu, dstIpu}] += static_cast<double>(t.bytes);
        stats.interIpuBytes += t.bytes;
        stats.crossesIpus = true;
      }
    }
    if (!remoteDst) continue;  // purely local
    // Broadcast: the source serialises the payload once regardless of the
    // number of on-chip destinations.
    sendBytes[t.srcTile] += static_cast<double>(t.bytes);
    instrs[t.srcTile] += 1;
    stats.instructions += 1;
    stats.totalBytes += t.bytes;
    if (traffic != nullptr) {
      traffic->recordTransfer(t.srcTile, t.dstTiles, t.bytes);
    }
  }

  double maxSendCycles = 0;
  double maxRecvCycles = 0;
  double maxInstr = 0;
  for (std::size_t i = 0; i < nTiles; ++i) {
    maxSendCycles = std::max(maxSendCycles,
                             sendBytes[i] / target.exchangeSendBytesPerCycle);
    maxRecvCycles = std::max(maxRecvCycles,
                             recvBytes[i] / target.exchangeRecvBytesPerCycle);
    maxInstr = std::max(maxInstr, static_cast<double>(instrs[i]));
  }

  double linkCycles = 0;
  for (const auto& [pair, bytes] : linkBytes) {
    linkCycles = std::max(linkCycles, bytes / target.linkBytesPerCycle());
  }

  const double sync =
      stats.crossesIpus ? target.syncCyclesGlobal : target.syncCyclesOnChip;
  stats.cycles = sync + target.exchangeInstrCycles * maxInstr +
                 std::max(maxSendCycles, maxRecvCycles) + linkCycles;
  return stats;
}

}  // namespace graphene::ipu
