#include "dsl/codedsl.hpp"

#include "support/error.hpp"

namespace graphene::dsl {

namespace {

thread_local CodeletBuilder* g_currentBuilder = nullptr;

ExprPtr makeConst(Scalar s) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Const;
  e->type = s.type();
  e->constant = s;
  return e;
}

ExprPtr makeVarRead(int var, DType type) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Var;
  e->type = type;
  e->var = var;
  return e;
}

ExprPtr makeBinary(BinOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Binary;
  bool isCmp = op == BinOp::Lt || op == BinOp::Le || op == BinOp::Gt ||
               op == BinOp::Ge || op == BinOp::Eq || op == BinOp::Ne ||
               op == BinOp::And || op == BinOp::Or;
  e->type = isCmp ? DType::Bool : graph::promote(a->type, b->type);
  e->bop = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprPtr makeUnary(UnOp op, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Unary;
  e->type = op == UnOp::Not ? DType::Bool : a->type;
  e->uop = op;
  e->a = std::move(a);
  return e;
}

}  // namespace

// ---------------------------------------------------------------------------
// CodeletBuilder
// ---------------------------------------------------------------------------

CodeletBuilder::CodeletBuilder() {
  GRAPHENE_CHECK(g_currentBuilder == nullptr,
                 "nested codelet tracing is not supported");
  g_currentBuilder = this;
  bodyStack_.push_back(&ir_.statements);
}

CodeletBuilder::~CodeletBuilder() { g_currentBuilder = nullptr; }

CodeletBuilder& CodeletBuilder::current() {
  GRAPHENE_CHECK(g_currentBuilder != nullptr,
                 "CodeDSL used outside of a codelet trace (Execute)");
  return *g_currentBuilder;
}

bool CodeletBuilder::active() { return g_currentBuilder != nullptr; }

int CodeletBuilder::newVar() { return ir_.numVars++; }

void CodeletBuilder::emit(StmtPtr stmt) {
  GRAPHENE_DCHECK(!bodyStack_.empty(), "no active body");
  bodyStack_.back()->push_back(std::move(stmt));
}

void CodeletBuilder::pushBody(StmtList* body) { bodyStack_.push_back(body); }

void CodeletBuilder::popBody() {
  GRAPHENE_CHECK(bodyStack_.size() > 1, "body stack underflow");
  bodyStack_.pop_back();
}

void CodeletBuilder::markUsesWorkers() { ir_.usesWorkers = true; }

CodeletIR CodeletBuilder::finish() {
  GRAPHENE_CHECK(bodyStack_.size() == 1, "unclosed control structure");
  return std::move(ir_);
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

namespace {

/// Declares a fresh variable initialised with `init` and returns its read
/// expression. Emits into the current builder.
std::pair<int, ExprPtr> declareVar(ExprPtr init) {
  CodeletBuilder& b = CodeletBuilder::current();
  int var = b.newVar();
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Assign;
  s->var = var;
  s->value = init;
  b.emit(s);
  return {var, makeVarRead(var, init->type)};
}

}  // namespace

Value::Value(int v) {
  auto [var, read] = declareVar(makeConst(Scalar(std::int32_t(v))));
  varId_ = var;
  expr_ = read;
}

Value::Value(float v) {
  auto [var, read] = declareVar(makeConst(Scalar(v)));
  varId_ = var;
  expr_ = read;
}

Value::Value(double v) : Value(static_cast<float>(v)) {}

Value::Value(bool v) {
  auto [var, read] = declareVar(makeConst(Scalar(v)));
  varId_ = var;
  expr_ = read;
}

Value::Value(graph::Scalar v) {
  auto [var, read] = declareVar(makeConst(v));
  varId_ = var;
  expr_ = read;
}

Value::Value(const Value& other) {
  // Copying creates a new variable so later mutation of either side is
  // independent — value semantics, like the generated C code.
  auto [var, read] = declareVar(other.expr());
  varId_ = var;
  expr_ = read;
  argIndex_ = other.argIndex_;
}

Value& Value::operator=(const Value& other) {
  if (this == &other) return *this;
  GRAPHENE_CHECK(varId_ >= 0, "cannot assign to a temporary CodeDSL value");
  CodeletBuilder& b = CodeletBuilder::current();
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::Assign;
  s->var = varId_;
  s->value = other.expr();
  b.emit(s);
  expr_ = makeVarRead(varId_, other.type());
  return *this;
}

Value::Value(const ElementRef& ref) {
  auto [var, read] = declareVar(ref.loadExpr());
  varId_ = var;
  expr_ = read;
}

Value Value::temporary(ExprPtr expr) {
  Value v;
  v.expr_ = std::move(expr);
  return v;
}

Value Value::named(ExprPtr expr) {
  auto [var, read] = declareVar(std::move(expr));
  Value v;
  v.varId_ = var;
  v.expr_ = read;
  return v;
}

Value Value::argument(int argIndex, DType type) {
  Value v;
  v.argIndex_ = argIndex;
  // Reading an argument handle as a scalar is not meaningful; expr_ stays
  // null until indexed. type is kept on the handle via a const expr marker.
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::ArgSize;
  e->type = type;
  e->arg = argIndex;
  v.expr_ = e;
  return v;
}

ElementRef Value::operator[](const Value& index) const {
  GRAPHENE_CHECK(argIndex_ >= 0, "operator[] requires a tensor argument");
  return ElementRef(argIndex_, index.expr(), expr_->type);
}

Value Value::size() const {
  GRAPHENE_CHECK(argIndex_ >= 0, "size() requires a tensor argument");
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::ArgSize;
  e->type = DType::Int32;
  e->arg = argIndex_;
  return named(e);
}

Value Value::cast(DType type) const {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Cast;
  e->type = type;
  e->a = expr();
  return named(e);
}

DType Value::type() const { return expr_->type; }

ExprPtr Value::expr() const {
  GRAPHENE_CHECK(expr_ != nullptr, "reading an uninitialised CodeDSL value");
  return expr_;
}

// ---------------------------------------------------------------------------
// ElementRef
// ---------------------------------------------------------------------------

ExprPtr ElementRef::loadExpr() const {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::ArgLoad;
  e->type = type_;
  e->arg = arg_;
  e->a = index_;
  return e;
}

ElementRef& ElementRef::operator=(const Value& value) {
  CodeletBuilder& b = CodeletBuilder::current();
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::StoreArg;
  s->arg = arg_;
  s->index = index_;
  s->value = value.expr();
  b.emit(s);
  return *this;
}

ElementRef& ElementRef::operator=(const ElementRef& other) {
  return *this = Value::temporary(other.loadExpr());
}

ElementRef::operator Value() const { return Value::named(loadExpr()); }

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

#define GRAPHENE_DEFINE_BINOP(sym, op)                         \
  Value operator sym(const Value& a, const Value& b) {         \
    return Value::named(makeBinary(BinOp::op, a.expr(), b.expr())); \
  }

GRAPHENE_DEFINE_BINOP(+, Add)
GRAPHENE_DEFINE_BINOP(-, Sub)
GRAPHENE_DEFINE_BINOP(*, Mul)
GRAPHENE_DEFINE_BINOP(/, Div)
GRAPHENE_DEFINE_BINOP(%, Mod)
GRAPHENE_DEFINE_BINOP(<, Lt)
GRAPHENE_DEFINE_BINOP(<=, Le)
GRAPHENE_DEFINE_BINOP(>, Gt)
GRAPHENE_DEFINE_BINOP(>=, Ge)
GRAPHENE_DEFINE_BINOP(==, Eq)
GRAPHENE_DEFINE_BINOP(!=, Ne)
GRAPHENE_DEFINE_BINOP(&&, And)
GRAPHENE_DEFINE_BINOP(||, Or)
#undef GRAPHENE_DEFINE_BINOP

Value operator-(const Value& a) {
  return Value::named(makeUnary(UnOp::Neg, a.expr()));
}
Value operator!(const Value& a) {
  return Value::named(makeUnary(UnOp::Not, a.expr()));
}
Value Min(const Value& a, const Value& b) {
  return Value::named(makeBinary(BinOp::Min, a.expr(), b.expr()));
}
Value Max(const Value& a, const Value& b) {
  return Value::named(makeBinary(BinOp::Max, a.expr(), b.expr()));
}
Value Abs(const Value& a) {
  return Value::named(makeUnary(UnOp::Abs, a.expr()));
}
Value Sqrt(const Value& a) {
  return Value::named(makeUnary(UnOp::Sqrt, a.expr()));
}

SelectOperand::SelectOperand(int v)
    : expr_(makeConst(Scalar(std::int32_t(v)))) {}
SelectOperand::SelectOperand(float v) : expr_(makeConst(Scalar(v))) {}
SelectOperand::SelectOperand(double v)
    : expr_(makeConst(Scalar(static_cast<float>(v)))) {}

Value Select(const Value& cond, const SelectOperand& ifTrue,
             const SelectOperand& ifFalse) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Select;
  e->type = graph::promote(ifTrue.expr()->type, ifFalse.expr()->type);
  e->a = cond.expr();
  e->b = ifTrue.expr();
  e->c = ifFalse.expr();
  return Value::named(e);
}

Value WorkerId() {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::WorkerId;
  e->type = DType::Int32;
  return Value::named(e);
}

// ---------------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------------

namespace {

void traceFor(Stmt::Kind kind, const Value& begin, const Value& end,
              const Value& step, const std::function<void(Value)>& body) {
  CodeletBuilder& b = CodeletBuilder::current();
  auto s = std::make_shared<Stmt>();
  s->kind = kind;
  s->var = b.newVar();
  s->begin = begin.expr();
  s->end = end.expr();
  s->step = step.expr();
  b.pushBody(&s->body);
  body(Value::named(makeVarRead(s->var, DType::Int32)));
  b.popBody();
  if (kind == Stmt::Kind::ParFor) b.markUsesWorkers();
  b.emit(s);
}

}  // namespace

void For(const Value& begin, const Value& end, const Value& step,
         const std::function<void(Value)>& body) {
  traceFor(Stmt::Kind::For, begin, end, step, body);
}

void ParallelFor(const Value& begin, const Value& end,
                 const std::function<void(Value)>& body) {
  traceFor(Stmt::Kind::ParFor, begin, end, 1, body);
}

void If(const Value& cond, const std::function<void()>& then,
        const std::function<void()>& otherwise) {
  CodeletBuilder& b = CodeletBuilder::current();
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::If;
  s->cond = cond.expr();
  b.pushBody(&s->body);
  then();
  b.popBody();
  if (otherwise) {
    b.pushBody(&s->elseBody);
    otherwise();
    b.popBody();
  }
  b.emit(s);
}

void While(const std::function<Value()>& cond,
           const std::function<void()>& body) {
  CodeletBuilder& b = CodeletBuilder::current();
  // Standard loop lowering: evaluate the condition into a variable before
  // the loop, branch on that variable, and recompute it at the end of every
  // body pass.
  Value c = cond();
  auto s = std::make_shared<Stmt>();
  s->kind = Stmt::Kind::While;
  s->cond = c.expr();
  b.pushBody(&s->body);
  body();
  c = cond();
  b.popBody();
  b.emit(s);
}

}  // namespace graphene::dsl
