#include "graph/engine.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "ipu/exchange.hpp"
#include "ipu/worker_pool.hpp"

namespace graphene::graph {

namespace {

/// Adapts the engine's tensor storage to the fault injector's view of the
/// machine (ipu::FaultSurface keeps the ipu layer independent of graph).
class EngineFaultSurface final : public ipu::FaultSurface {
 public:
  explicit EngineFaultSurface(Engine& engine) : engine_(engine) {}

  std::size_t numTensors() override { return engine_.graph().numTensors(); }

  std::string tensorName(std::size_t tensor) override {
    return engine_.graph().tensor(static_cast<TensorId>(tensor)).name;
  }

  std::size_t tensorElements(std::size_t tensor) override {
    return engine_.storageFor(static_cast<TensorId>(tensor)).totalElements();
  }

  void flipBit(std::size_t tensor, std::size_t element,
               unsigned bit) override {
    engine_.storageFor(static_cast<TensorId>(tensor)).flipBit(element, bit);
  }

  void zeroElement(std::size_t tensor, std::size_t element) override {
    TensorStorage& s = engine_.storageFor(static_cast<TensorId>(tensor));
    s.store(element, Scalar::zero(s.dtype()));
  }

  ipu::Profile& profile() override { return engine_.profile(); }

 private:
  Engine& engine_;
};

/// VertexContext backed by engine storage; indices are slice-relative, which
/// enforces tile-local access.
class StorageVertexContext final : public VertexContext {
 public:
  StorageVertexContext(Engine& engine, const Vertex& vertex)
      : engine_(engine), vertex_(vertex) {
    flatBase_.reserve(vertex.args.size());
    for (const TensorSlice& s : vertex.args) {
      flatBase_.push_back(engine_.storageFor(s.tensor).tileOffset(s.tile) +
                          s.begin);
    }
  }

  std::size_t numArgs() const override { return vertex_.args.size(); }

  std::size_t argSize(std::size_t arg) const override {
    GRAPHENE_DCHECK(arg < vertex_.args.size(), "arg out of range");
    return vertex_.args[arg].count;
  }

  ipu::DType argType(std::size_t arg) const override {
    GRAPHENE_DCHECK(arg < vertex_.args.size(), "arg out of range");
    return engine_.storageFor(vertex_.args[arg].tensor).dtype();
  }

  Scalar load(std::size_t arg, std::size_t index) const override {
    GRAPHENE_DCHECK(arg < vertex_.args.size(), "arg out of range");
    GRAPHENE_DCHECK(index < vertex_.args[arg].count,
                    "codelet read past its slice");
    return engine_.storageFor(vertex_.args[arg].tensor)
        .load(flatBase_[arg] + index);
  }

  void store(std::size_t arg, std::size_t index,
             const Scalar& value) override {
    GRAPHENE_DCHECK(arg < vertex_.args.size(), "arg out of range");
    GRAPHENE_DCHECK(index < vertex_.args[arg].count,
                    "codelet write past its slice");
    engine_.storageFor(vertex_.args[arg].tensor)
        .store(flatBase_[arg] + index, value);
  }

  std::span<float> floatSpan(std::size_t arg) override {
    auto whole = engine_.storageFor(vertex_.args[arg].tensor).as<float>();
    return whole.subspan(flatBase_[arg], vertex_.args[arg].count);
  }

  std::span<const std::int32_t> intSpan(std::size_t arg) const override {
    auto whole =
        engine_.storageFor(vertex_.args[arg].tensor).as<std::int32_t>();
    return whole.subspan(flatBase_[arg], vertex_.args[arg].count);
  }

 private:
  Engine& engine_;
  const Vertex& vertex_;
  std::vector<std::size_t> flatBase_;
};

}  // namespace

Engine::Engine(Graph& graph) : graph_(graph) { syncStorage(); }

void Engine::syncStorage() {
  for (std::size_t i = storage_.size(); i < graph_.numTensors(); ++i) {
    storage_.emplace_back(graph_.tensor(static_cast<TensorId>(i)));
  }
}

TensorStorage& Engine::storageFor(TensorId id) {
  syncStorage();
  GRAPHENE_CHECK(id < storage_.size(), "invalid tensor id");
  return storage_[id];
}

Scalar Engine::readScalar(TensorId id) { return storageFor(id).load(0); }

Scalar Engine::readScalarFinite(TensorId id) {
  Scalar value = readScalar(id);
  if (!std::isfinite(value.toHostDouble())) {
    throw NumericalError(detail::concatMessage(
        "non-finite value ", value.toString(), " read from tensor '",
        graph_.tensor(id).name, "'"));
  }
  return value;
}

void Engine::writeScalar(TensorId id, const Scalar& value) {
  TensorStorage& s = storageFor(id);
  if (graph_.tensor(id).replicated) {
    for (std::size_t i = 0; i < s.totalElements(); ++i) s.store(i, value);
  } else {
    s.store(0, value);
  }
}

Scalar Engine::loadElement(TensorId id, std::size_t flatIndex) {
  return storageFor(id).load(flatIndex);
}

void Engine::storeElement(TensorId id, std::size_t flatIndex,
                          const Scalar& value) {
  storageFor(id).store(flatIndex, value);
}

void Engine::run(const ProgramPtr& program) {
  if (!program) return;
  syncStorage();
  switch (program->kind) {
    case Program::Kind::Sequence:
      for (const auto& child : program->children) run(child);
      break;
    case Program::Kind::Execute:
      runExecute(program->computeSet);
      break;
    case Program::Kind::Copy:
      runCopy(program->copies);
      break;
    case Program::Kind::Repeat:
      for (std::size_t i = 0; i < program->repeatCount; ++i) {
        run(program->body);
      }
      break;
    case Program::Kind::RepeatWhile:
      while (true) {
        run(program->condProgram);
        if (!readScalar(program->condTensor).truthy()) break;
        run(program->body);
      }
      break;
    case Program::Kind::If:
      run(program->condProgram);
      if (readScalar(program->condTensor).truthy()) {
        run(program->thenBody);
      } else {
        run(program->elseBody);
      }
      break;
    case Program::Kind::HostCall:
      if (program->hostFn) program->hostFn(*this);
      break;
  }
}

void Engine::runExecute(ComputeSetId csId) {
  const ComputeSet& cs = graph_.computeSet(csId);
  const ipu::IpuTarget& target = graph_.target();

  // Group vertex indices by tile.
  std::map<std::size_t, std::vector<std::size_t>> byTile;
  for (std::size_t i = 0; i < cs.vertices.size(); ++i) {
    byTile[cs.vertices[i].tile].push_back(i);
  }

  double maxTileCycles = 0;
  for (const auto& [tile, vertexIds] : byTile) {
    ipu::WorkerPool pool(target.workersPerTile);
    std::size_t nextWorker = 0;
    for (std::size_t vi : vertexIds) {
      const Vertex& v = cs.vertices[vi];
      StorageVertexContext ctx(*this, v);
      VertexCost cost = graph_.codelet(v.codelet).run(ctx);
      if (cost.wholeTile) {
        // Supervisor codelet driving all workers itself: serialise against
        // everything else on the tile.
        pool.sync();
        for (std::size_t w = 0; w < pool.numWorkers(); ++w) {
          pool.addCycles(w, cost.workerCycles);
        }
      } else {
        pool.addCycles(nextWorker, cost.workerCycles);
        nextWorker = (nextWorker + 1) % pool.numWorkers();
      }
    }
    maxTileCycles = std::max(maxTileCycles, pool.elapsed());
  }

  // Fault injection: SRAM upsets land between supersteps; a stalled tile
  // delays the BSP barrier, so its extra cycles join the critical path.
  if (faultPlan_ != nullptr) {
    EngineFaultSurface surface(*this);
    maxTileCycles +=
        faultPlan_->afterComputeSuperstep(profile_.computeSupersteps, surface);
  }

  // Compute supersteps end with each IPU's *internal* sync; the IPUs sync in
  // parallel, so the cost does not grow with the pod size. Global syncs are
  // only paid when an exchange crosses IPUs (priced in priceExchange).
  profile_.computeCycles[cs.category] += maxTileCycles;
  profile_.syncCycles += target.syncCyclesOnChip;
  profile_.computeSupersteps += 1;
}

void Engine::runCopy(const std::vector<CopySegment>& segments) {
  std::vector<ipu::Transfer> transfers;
  transfers.reserve(segments.size());
  for (const CopySegment& seg : segments) {
    GRAPHENE_CHECK(seg.src != kInvalidTensor && seg.dst != kInvalidTensor,
                   "copy segment with invalid tensors");
    TensorStorage& src = storageFor(seg.src);
    TensorStorage& dst = storageFor(seg.dst);
    const std::size_t srcFlat = src.tileOffset(seg.srcTile) + seg.srcBegin;
    ipu::Transfer t;
    t.srcTile = seg.srcTile;
    t.bytes = seg.count * ipu::sizeOf(src.dtype());
    // Fault injection: a transfer can be dropped (payload lost, destination
    // keeps its stale data) or corrupted (payload lands with a flipped bit).
    // Either way the fabric spent the cycles, so pricing is unchanged.
    ipu::TransferFate fate = ipu::TransferFate::Deliver;
    bool fateDecided = false;
    bool delivered = false;
    std::size_t firstDeliveredFlat = 0;
    for (const CopySegment::Destination& d : seg.dsts) {
      const std::size_t dstFlat = dst.tileOffset(d.tile) + d.begin;
      if (seg.src == seg.dst && seg.srcTile == d.tile && srcFlat == dstFlat) {
        continue;  // no-op self copy
      }
      if (faultPlan_ != nullptr && !fateDecided) {
        EngineFaultSurface surface(*this);
        fate = faultPlan_->onTransfer(profile_.exchangeSupersteps,
                                      transfers.size(), seg.dst, surface);
        fateDecided = true;
      }
      if (fate != ipu::TransferFate::Drop) {
        dst.copyFrom(src, srcFlat, dstFlat, seg.count);
        if (!delivered) {
          delivered = true;
          firstDeliveredFlat = dstFlat;
        }
      }
      t.dstTiles.push_back(d.tile);
    }
    if (fate == ipu::TransferFate::Corrupt && delivered) {
      EngineFaultSurface surface(*this);
      faultPlan_->corruptDelivered(profile_.exchangeSupersteps, seg.dst,
                                   firstDeliveredFlat, seg.count, surface);
    }
    if (!t.dstTiles.empty()) transfers.push_back(std::move(t));
  }
  ipu::ExchangeStats stats = ipu::priceExchange(graph_.target(), transfers);
  profile_.exchangeCycles += stats.cycles;
  profile_.exchangeSupersteps += 1;
  profile_.exchangeInstructions += stats.instructions;
  profile_.exchangedBytes += stats.totalBytes;
}

}  // namespace graphene::graph
