// Tests for the ELLPACK / SELL formats (§II-C future-work exploration).
#include <gtest/gtest.h>

#include "matrix/ellpack.hpp"
#include "matrix/generators.hpp"
#include "support/rng.hpp"

using namespace graphene;
using namespace graphene::matrix;

namespace {

CsrMatrix randomMatrix(std::size_t n, std::size_t nnzPerRow,
                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> trips;
  for (std::size_t r = 0; r < n; ++r) {
    trips.push_back({r, r, rng.uniform(1, 2)});
    std::size_t extra = rng.nextBelow(nnzPerRow);
    for (std::size_t k = 0; k < extra; ++k) {
      trips.push_back({r, rng.nextBelow(n), rng.uniform(-1, 1)});
    }
  }
  return CsrMatrix::fromTriplets(n, n, std::move(trips));
}

}  // namespace

class FormatRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormatRoundTrip, EllpackPreservesMatrix) {
  auto a = randomMatrix(150, 9, GetParam());
  auto e = EllpackMatrix::fromCsr(a);
  auto back = e.toCsr();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      ASSERT_DOUBLE_EQ(back.at(r, c), a.at(r, c));
    }
  }
}

TEST_P(FormatRoundTrip, SellPreservesMatrix) {
  auto a = randomMatrix(150, 9, GetParam() + 7);
  for (std::size_t sliceHeight : {1u, 4u, 8u, 16u, 150u, 200u}) {
    auto s = SellMatrix::fromCsr(a, sliceHeight);
    auto back = s.toCsr();
    ASSERT_EQ(back.nnz(), a.nnz()) << "slice " << sliceHeight;
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (std::size_t k = a.rowPtr()[r]; k < a.rowPtr()[r + 1]; ++k) {
        ASSERT_DOUBLE_EQ(
            back.at(r, static_cast<std::size_t>(a.colIdx()[k])),
            a.values()[k]);
      }
    }
  }
}

TEST_P(FormatRoundTrip, SpmvAgreesWithCsr) {
  auto a = randomMatrix(200, 7, GetParam() + 13);
  auto e = EllpackMatrix::fromCsr(a);
  auto s = SellMatrix::fromCsr(a, 8);
  Rng rng(GetParam());
  std::vector<double> x(a.cols()), y1(a.rows()), y2(a.rows()), y3(a.rows());
  for (double& v : x) v = rng.uniform(-2, 2);
  a.spmv(x, y1);
  e.spmv(x, y2);
  s.spmv(x, y3);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    ASSERT_NEAR(y2[r], y1[r], 1e-12);
    ASSERT_NEAR(y3[r], y1[r], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatRoundTrip,
                         ::testing::Values(1, 22, 333));

TEST(Ellpack, PaddingOnRegularStencilIsSmall) {
  auto g = poisson3d7(12, 12, 12);
  auto e = EllpackMatrix::fromCsr(g.matrix);
  EXPECT_EQ(e.rowWidth(), 7u);
  EXPECT_LT(e.paddingFactor(), 1.15);
}

TEST(Ellpack, PaddingOnIrregularMatrixIsLarge) {
  // One long row forces every row to the same width.
  std::vector<Triplet> trips;
  const std::size_t n = 100;
  for (std::size_t r = 0; r < n; ++r) trips.push_back({r, r, 1.0});
  for (std::size_t c = 0; c < 50; ++c) trips.push_back({0, c, 0.5});
  auto a = CsrMatrix::fromTriplets(n, n, trips);
  auto e = EllpackMatrix::fromCsr(a);
  EXPECT_EQ(e.rowWidth(), 50u);
  EXPECT_GT(e.paddingFactor(), 20.0);
  // SELL contains the damage to one slice.
  auto s = SellMatrix::fromCsr(a, 8);
  EXPECT_LT(s.paddingFactor(), 5.0);
  EXPECT_LT(s.footprintBytes(), e.footprintBytes());
}

TEST(Sell, SliceAccountingAddsUp) {
  auto g = afShellLike(2000);
  auto s = SellMatrix::fromCsr(g.matrix, 8);
  EXPECT_EQ(s.numSlices(), (g.matrix.rows() + 7) / 8);
  EXPECT_GE(s.paddedEntries(), g.matrix.nnz());
  EXPECT_EQ(s.nnz(), g.matrix.nnz());
}
