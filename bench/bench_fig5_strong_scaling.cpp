// Figure 5: strong scaling of one SpMV over 1..16 IPUs at a fixed problem
// size, total speedup vs compute-only speedup vs ideal.
//
// The paper uses a 200^3 Poisson grid (58 M nnz) on up to 16 full IPUs
// (1,472 tiles each); this host simulates a scaled-down pod (tiles/IPU and
// grid size printed below). Strong-scaling *shape* is what matters: the
// compute part scales ideally, the total deviates slightly as the
// surface-to-volume ratio of the decomposition grows (§VI-B).
#include <cstdio>

#include "bench_common.hpp"

using namespace graphene;

namespace {

struct Point {
  std::size_t ipus;
  double totalSec;
  double computeSec;
};

Point measure(const matrix::GeneratedMatrix& g, std::size_t tilesPerIpu,
              std::size_t ipus) {
  Point pt{ipus, 0, 0};
  for (int withExchange = 0; withExchange < 2; ++withExchange) {
    ipu::IpuTarget target;
    target.tilesPerIpu = tilesPerIpu;
    target.numIpus = ipus;
    bench::DistSystem s = bench::makeSystem(g, target);
    dsl::Tensor x = s.A->makeVector(dsl::DType::Float32, "x");
    dsl::Tensor y = s.A->makeVector(dsl::DType::Float32, "y");
    s.A->spmv(y, x, /*exchange=*/withExchange == 1);
    auto xh = bench::randomRhs(g.matrix.rows());
    auto prof = bench::runProgram(s, s.ctx->program(), xh, x);
    double sec = target.secondsFromCycles(prof.totalCycles());
    if (withExchange) {
      pt.totalSec = sec;
    } else {
      pt.computeSec = sec;
    }
  }
  return pt;
}

}  // namespace

int main() {
  bench::printHeader("Figure 5 — SpMV strong scaling",
                     "near-ideal strong scaling of SpMV, compute part ideal "
                     "(paper Fig. 5)");

  const std::size_t tilesPerIpu = 64;  // scaled-down Mk2 (real: 1472)
  const std::size_t grid = 64;         // scaled-down 200^3 (rows/tile at 16
                                       // IPUs ≈ the paper's 340)
  auto g = matrix::poisson3d7(grid, grid, grid);
  std::printf("problem: %zu^3 Poisson 7-point, %zu rows, %zu nnz; "
              "%zu tiles per simulated IPU\n\n",
              grid, g.matrix.rows(), g.matrix.nnz(), tilesPerIpu);

  const std::size_t ipuCounts[] = {1, 2, 4, 8, 16};
  std::vector<Point> points;
  for (std::size_t n : ipuCounts) points.push_back(measure(g, tilesPerIpu, n));

  TextTable t({"IPUs", "total time", "speedup", "compute time",
               "compute speedup", "ideal"});
  for (const Point& p : points) {
    t.addRow({std::to_string(p.ipus), formatTime(p.totalSec),
              formatSig(points[0].totalSec / p.totalSec, 3),
              formatTime(p.computeSec),
              formatSig(points[0].computeSec / p.computeSec, 3),
              std::to_string(p.ipus)});
  }
  std::printf("%s\n", t.render().c_str());

  const Point& last = points.back();
  double totalSpeedup = points[0].totalSec / last.totalSec;
  double computeSpeedup = points[0].computeSec / last.computeSec;
  std::printf("check: compute speedup at 16 IPUs within 15%% of ideal: %s\n",
              computeSpeedup > 0.85 * 16 ? "PASS" : "FAIL");
  std::printf("check: total speedup below compute speedup (halo overhead "
              "grows with surface/volume): %s\n",
              totalSpeedup <= computeSpeedup * 1.001 ? "PASS" : "FAIL");
  std::printf("check: total speedup still > 60%% of ideal: %s (%.1fx)\n",
              totalSpeedup > 0.6 * 16 ? "PASS" : "FAIL", totalSpeedup);
  return 0;
}
