// Runtime backing store for tensor data during simulation.
//
// Each tensor is one contiguous typed vector in host memory, organised as the
// concatenation of its per-tile regions. On the real machine the regions live
// in disjoint tile SRAMs; the simulator enforces that discipline at the API
// level — codelets can only touch the region of the tile they run on, and
// inter-tile data movement happens exclusively through Copy programs
// (exchange supersteps).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <variant>
#include <vector>

#include "graph/scalar.hpp"
#include "graph/tensor.hpp"
#include "support/error.hpp"

namespace graphene::graph {

class TensorStorage {
 public:
  TensorStorage() = default;

  explicit TensorStorage(const TensorInfo& info) : dtype_(info.dtype) {
    offsets_.reserve(info.mapping.numTiles() + 1);
    std::size_t off = 0;
    for (std::size_t s : info.mapping.sizePerTile) {
      offsets_.push_back(off);
      off += s;
    }
    offsets_.push_back(off);
    switch (dtype_) {
      case DType::Bool: data_ = std::vector<std::uint8_t>(off, 0); break;
      case DType::Int32: data_ = std::vector<std::int32_t>(off, 0); break;
      case DType::Float32: data_ = std::vector<float>(off, 0.0f); break;
      case DType::Float64:
        data_ = std::vector<twofloat::SoftDouble>(off);
        break;
      case DType::DoubleWord:
        data_ = std::vector<twofloat::Float2>(off);
        break;
    }
  }

  DType dtype() const { return dtype_; }

  std::size_t totalElements() const { return offsets_.back(); }

  std::size_t tileOffset(std::size_t tile) const {
    GRAPHENE_DCHECK(tile + 1 < offsets_.size(), "tile out of range");
    return offsets_[tile];
  }

  std::size_t tileSize(std::size_t tile) const {
    GRAPHENE_DCHECK(tile + 1 < offsets_.size(), "tile out of range");
    return offsets_[tile + 1] - offsets_[tile];
  }

  /// Typed whole-tensor span (host-side access; used by Engine IO and tests).
  template <typename T>
  std::span<T> as() {
    return std::span<T>(std::get<std::vector<T>>(data_));
  }
  template <typename T>
  std::span<const T> as() const {
    return std::span<const T>(std::get<std::vector<T>>(data_));
  }

  /// Dynamically typed element access by flat index.
  Scalar load(std::size_t flatIndex) const {
    GRAPHENE_DCHECK(flatIndex < totalElements(), "index out of range");
    return std::visit(
        [&](const auto& vec) -> Scalar {
          using T = typename std::decay_t<decltype(vec)>::value_type;
          if constexpr (std::is_same_v<T, std::uint8_t>) {
            return Scalar(vec[flatIndex] != 0);
          } else {
            return Scalar(vec[flatIndex]);
          }
        },
        data_);
  }

  void store(std::size_t flatIndex, const Scalar& value) {
    GRAPHENE_DCHECK(flatIndex < totalElements(), "index out of range");
    Scalar v = value.castTo(dtype_);
    std::visit(
        [&](auto& vec) {
          using T = typename std::decay_t<decltype(vec)>::value_type;
          if constexpr (std::is_same_v<T, std::uint8_t>) {
            vec[flatIndex] = v.asBool() ? 1 : 0;
          } else if constexpr (std::is_same_v<T, std::int32_t>) {
            vec[flatIndex] = v.asInt();
          } else if constexpr (std::is_same_v<T, float>) {
            vec[flatIndex] = v.asFloat();
          } else if constexpr (std::is_same_v<T, twofloat::SoftDouble>) {
            vec[flatIndex] = v.asSoftDouble();
          } else {
            vec[flatIndex] = v.asDoubleWord();
          }
        },
        data_);
  }

  /// Sets every element to `value`. Casts once and fills the typed vector —
  /// the bulk path for broadcasting into replicated scalar tensors.
  void fill(const Scalar& value) {
    Scalar v = value.castTo(dtype_);
    std::visit(
        [&](auto& vec) {
          using T = typename std::decay_t<decltype(vec)>::value_type;
          if constexpr (std::is_same_v<T, std::uint8_t>) {
            std::fill(vec.begin(), vec.end(),
                      static_cast<std::uint8_t>(v.asBool() ? 1 : 0));
          } else if constexpr (std::is_same_v<T, std::int32_t>) {
            std::fill(vec.begin(), vec.end(), v.asInt());
          } else if constexpr (std::is_same_v<T, float>) {
            std::fill(vec.begin(), vec.end(), v.asFloat());
          } else if constexpr (std::is_same_v<T, twofloat::SoftDouble>) {
            std::fill(vec.begin(), vec.end(), v.asSoftDouble());
          } else {
            std::fill(vec.begin(), vec.end(), v.asDoubleWord());
          }
        },
        data_);
  }

  /// Flips one bit of an element's raw storage representation — the
  /// simulated analogue of an SRAM single-event upset (fault injection).
  /// Bit indices wrap modulo the element's bit width. For DoubleWord pairs,
  /// bits 0–31 hit the high word and 32–63 the low word.
  void flipBit(std::size_t flatIndex, unsigned bit) {
    GRAPHENE_DCHECK(flatIndex < totalElements(), "index out of range");
    std::visit(
        [&](auto& vec) {
          using T = typename std::decay_t<decltype(vec)>::value_type;
          if constexpr (std::is_same_v<T, std::uint8_t>) {
            vec[flatIndex] ^= 1;  // a bool cell can only toggle
          } else if constexpr (std::is_same_v<T, std::int32_t>) {
            vec[flatIndex] = std::bit_cast<std::int32_t>(
                std::bit_cast<std::uint32_t>(vec[flatIndex]) ^
                (std::uint32_t(1) << (bit % 32)));
          } else if constexpr (std::is_same_v<T, float>) {
            vec[flatIndex] = std::bit_cast<float>(
                std::bit_cast<std::uint32_t>(vec[flatIndex]) ^
                (std::uint32_t(1) << (bit % 32)));
          } else if constexpr (std::is_same_v<T, twofloat::SoftDouble>) {
            vec[flatIndex] = twofloat::SoftDouble::fromBits(
                vec[flatIndex].bits() ^ (std::uint64_t(1) << (bit % 64)));
          } else {
            float& word = (bit % 64) < 32 ? vec[flatIndex].hi
                                          : vec[flatIndex].lo;
            word = std::bit_cast<float>(std::bit_cast<std::uint32_t>(word) ^
                                        (std::uint32_t(1) << (bit % 32)));
          }
        },
        data_);
  }

  /// Raw element copy from another storage of the same dtype (exchange path;
  /// the fabric moves bytes, not values).
  void copyFrom(const TensorStorage& src, std::size_t srcFlat,
                std::size_t dstFlat, std::size_t count) {
    GRAPHENE_CHECK(src.dtype_ == dtype_, "exchange between different dtypes");
    GRAPHENE_DCHECK(srcFlat + count <= src.totalElements(), "src overrun");
    GRAPHENE_DCHECK(dstFlat + count <= totalElements(), "dst overrun");
    std::visit(
        [&](auto& dstVec) {
          using V = std::decay_t<decltype(dstVec)>;
          const auto& srcVec = std::get<V>(src.data_);
          std::copy(srcVec.begin() + static_cast<std::ptrdiff_t>(srcFlat),
                    srcVec.begin() + static_cast<std::ptrdiff_t>(srcFlat + count),
                    dstVec.begin() + static_cast<std::ptrdiff_t>(dstFlat));
        },
        data_);
  }

 private:
  DType dtype_ = DType::Float32;
  std::vector<std::size_t> offsets_;  // per-tile offsets + total at back
  std::variant<std::vector<std::uint8_t>, std::vector<std::int32_t>,
               std::vector<float>, std::vector<twofloat::SoftDouble>,
               std::vector<twofloat::Float2>>
      data_;
};

}  // namespace graphene::graph
