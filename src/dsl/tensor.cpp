#include "dsl/tensor.hpp"

#include <iostream>

#include "dsl/interpreter.hpp"
#include "graph/engine.hpp"
#include "support/error.hpp"

namespace graphene::dsl {

namespace detail {

struct ExpNode {
  enum class Kind { Ref, Const, Binary, Unary, Cast, Select };
  Kind kind = Kind::Const;
  DType type = DType::Float32;
  graph::TensorId tensor = graph::kInvalidTensor;  // Ref
  Scalar constant;                                 // Const
  ExpNodePtr a, b, c;
  BinOp bop = BinOp::Add;
  UnOp uop = UnOp::Neg;
};

namespace {

ExpNodePtr refNode(graph::TensorId id) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Ref;
  n->tensor = id;
  n->type = Context::current().graph().tensor(id).dtype;
  return n;
}

ExpNodePtr constNode(Scalar s) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Const;
  n->constant = s;
  n->type = s.type();
  return n;
}

ExpNodePtr binaryNode(BinOp op, ExpNodePtr a, ExpNodePtr b) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Binary;
  bool isCmp = op == BinOp::Lt || op == BinOp::Le || op == BinOp::Gt ||
               op == BinOp::Ge || op == BinOp::Eq || op == BinOp::Ne ||
               op == BinOp::And || op == BinOp::Or;
  n->type = isCmp ? DType::Bool : graph::promote(a->type, b->type);
  n->bop = op;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

ExpNodePtr unaryNode(UnOp op, ExpNodePtr a) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Unary;
  n->type = op == UnOp::Not ? DType::Bool : a->type;
  n->uop = op;
  n->a = std::move(a);
  return n;
}

/// Collects the distinct tensors referenced by an expression (depth-first,
/// stable order).
void collectRefs(const ExpNodePtr& node, std::vector<graph::TensorId>& out) {
  if (!node) return;
  if (node->kind == ExpNode::Kind::Ref) {
    for (graph::TensorId id : out) {
      if (id == node->tensor) return;
    }
    out.push_back(node->tensor);
    return;
  }
  collectRefs(node->a, out);
  collectRefs(node->b, out);
  collectRefs(node->c, out);
}

bool tensorIsScalarShaped(const graph::TensorInfo& info) {
  for (std::size_t s : info.mapping.sizePerTile) {
    if (s != 1) return false;
  }
  return true;
}

}  // namespace
}  // namespace detail

using detail::ExpNode;
using detail::ExpNodePtr;

// ---------------------------------------------------------------------------
// Tensor
// ---------------------------------------------------------------------------

namespace {

graph::TensorId makeTensor(DType type, graph::TileMapping mapping,
                           std::string name, bool replicated) {
  Context& ctx = Context::current();
  graph::TensorInfo info;
  info.name = name.empty() ? ctx.freshName("t") : std::move(name);
  info.dtype = type;
  info.mapping = std::move(mapping);
  info.replicated = replicated;
  return ctx.graph().addTensor(std::move(info));
}

}  // namespace

Tensor::Tensor(DType type, std::size_t size, std::string name) {
  id_ = makeTensor(
      type,
      graph::TileMapping::linear(size, Context::current().target().totalTiles()),
      std::move(name), false);
}

Tensor::Tensor(DType type, graph::TileMapping mapping, std::string name) {
  id_ = makeTensor(type, std::move(mapping), std::move(name), false);
}

Tensor Tensor::scalar(DType type, std::string name) {
  Tensor t;
  t.id_ = makeTensor(
      type,
      graph::TileMapping::replicated(Context::current().target().totalTiles()),
      std::move(name), true);
  return t;
}

Tensor::Tensor(const Expression& e) { id_ = e.materialize().id(); }

Tensor::Tensor(const Tensor& other) {
  const auto& info = other.info();
  id_ = makeTensor(info.dtype, info.mapping, "", info.replicated);
  Expression(other).materializeInto(*this);
}

Tensor& Tensor::operator=(const Expression& e) {
  e.materializeInto(*this);
  return *this;
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other || id_ == other.id_) return *this;
  Expression(other).materializeInto(*this);
  return *this;
}

Expression Tensor::reduce(ReduceKind kind) const {
  return Expression(*this).reduce(kind);
}

Expression Tensor::cast(DType type) const {
  return Expression(*this).cast(type);
}

std::size_t Tensor::size() const { return info().totalElements(); }

DType Tensor::type() const { return info().dtype; }

const graph::TensorInfo& Tensor::info() const {
  return Context::current().graph().tensor(id_);
}

bool Tensor::isScalarShaped() const {
  return detail::tensorIsScalarShaped(info());
}

Tensor Tensor::wrap(graph::TensorId id) {
  Tensor t;
  t.id_ = id;
  return t;
}

// ---------------------------------------------------------------------------
// Expression construction
// ---------------------------------------------------------------------------

Expression::Expression(const Tensor& t) { node_ = detail::refNode(t.id()); }
Expression::Expression(float v) { node_ = detail::constNode(Scalar(v)); }
Expression::Expression(double v)
    : Expression(static_cast<float>(v)) {}
Expression::Expression(int v) {
  node_ = detail::constNode(Scalar(std::int32_t(v)));
}

Expression Expression::constant(Scalar s) {
  return fromNode(detail::constNode(s));
}

Expression Expression::fromNode(detail::ExpNodePtr node) {
  Expression e;
  e.node_ = std::move(node);
  return e;
}

Expression Expression::cast(DType type) const {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Cast;
  n->type = type;
  n->a = node_;
  return fromNode(n);
}

DType Expression::type() const { return node_->type; }

#define GRAPHENE_DEFINE_EXPR_BINOP(sym, op)                                  \
  Expression operator sym(const Expression& a, const Expression& b) {        \
    return Expression::fromNode(                                             \
        detail::binaryNode(BinOp::op, a.node(), b.node()));                  \
  }

GRAPHENE_DEFINE_EXPR_BINOP(+, Add)
GRAPHENE_DEFINE_EXPR_BINOP(-, Sub)
GRAPHENE_DEFINE_EXPR_BINOP(*, Mul)
GRAPHENE_DEFINE_EXPR_BINOP(/, Div)
GRAPHENE_DEFINE_EXPR_BINOP(<, Lt)
GRAPHENE_DEFINE_EXPR_BINOP(<=, Le)
GRAPHENE_DEFINE_EXPR_BINOP(>, Gt)
GRAPHENE_DEFINE_EXPR_BINOP(>=, Ge)
GRAPHENE_DEFINE_EXPR_BINOP(==, Eq)
GRAPHENE_DEFINE_EXPR_BINOP(!=, Ne)
GRAPHENE_DEFINE_EXPR_BINOP(&&, And)
GRAPHENE_DEFINE_EXPR_BINOP(||, Or)
GRAPHENE_DEFINE_EXPR_BINOP(%, Mod)
#undef GRAPHENE_DEFINE_EXPR_BINOP

Expression operator-(const Expression& a) {
  return Expression::fromNode(detail::unaryNode(UnOp::Neg, a.node()));
}
Expression operator!(const Expression& a) {
  return Expression::fromNode(detail::unaryNode(UnOp::Not, a.node()));
}
Expression Abs(const Expression& a) {
  return Expression::fromNode(detail::unaryNode(UnOp::Abs, a.node()));
}
Expression Sqrt(const Expression& a) {
  return Expression::fromNode(detail::unaryNode(UnOp::Sqrt, a.node()));
}
Expression Min(const Expression& a, const Expression& b) {
  return Expression::fromNode(detail::binaryNode(BinOp::Min, a.node(), b.node()));
}
Expression Max(const Expression& a, const Expression& b) {
  return Expression::fromNode(detail::binaryNode(BinOp::Max, a.node(), b.node()));
}
Expression Select(const Expression& cond, const Expression& ifTrue,
                  const Expression& ifFalse) {
  auto n = std::make_shared<ExpNode>();
  n->kind = ExpNode::Kind::Select;
  n->type = graph::promote(ifTrue.type(), ifFalse.type());
  n->a = cond.node();
  n->b = ifTrue.node();
  n->c = ifFalse.node();
  return Expression::fromNode(n);
}

Expression Dot(const Expression& a, const Expression& b) {
  return (a * b).reduce();
}

Expression Norm2(const Expression& a) { return Sqrt((a * a).reduce()); }

Expression NormInf(const Expression& a) {
  return Abs(a).reduce(ReduceKind::Max);
}

// ---------------------------------------------------------------------------
// Materialisation
// ---------------------------------------------------------------------------

namespace {

bool exprIsScalarShaped(const ExpNodePtr& node) {
  std::vector<graph::TensorId> refs;
  detail::collectRefs(node, refs);
  graph::Graph& g = Context::current().graph();
  for (graph::TensorId id : refs) {
    if (!detail::tensorIsScalarShaped(g.tensor(id))) return false;
  }
  return true;
}

}  // namespace

void Expression::materializeInto(Tensor& dst,
                                 const std::string& category) const {
  Context& ctx = Context::current();
  graph::Graph& g = ctx.graph();
  const graph::TensorInfo& dstInfo = g.tensor(dst.id());

  std::vector<graph::TensorId> refs;
  detail::collectRefs(node_, refs);

  // Broadcast check: every referenced tensor matches dst's mapping exactly
  // or is scalar-shaped (one element per tile — NumPy rule for size 1).
  std::vector<bool> scalarArg(refs.size(), false);
  for (std::size_t k = 0; k < refs.size(); ++k) {
    const graph::TensorInfo& info = g.tensor(refs[k]);
    if (refs[k] == dst.id()) {
      scalarArg[k] = detail::tensorIsScalarShaped(info);
      continue;  // in-place update, same mapping by construction
    }
    if (detail::tensorIsScalarShaped(info)) {
      scalarArg[k] = true;
    } else {
      GRAPHENE_CHECK(info.mapping == dstInfo.mapping,
                     "elementwise operands must share the destination's tile "
                     "mapping or be scalars ('",
                     info.name, "' vs '", dstInfo.name, "')");
    }
  }

  // Trace the fused elementwise codelet (§III-C: the whole expression tree
  // becomes one codelet).
  CodeletBuilder builder;
  builder.setNumArgs(1 + refs.size());
  std::vector<Value> handles;
  handles.push_back(Value::argument(0, dstInfo.dtype));
  for (std::size_t k = 0; k < refs.size(); ++k) {
    handles.push_back(
        Value::argument(static_cast<int>(k + 1), g.tensor(refs[k]).dtype));
  }

  // Hoist scalar operands out of the loop.
  std::vector<Value> hoisted;
  hoisted.reserve(refs.size());
  for (std::size_t k = 0; k < refs.size(); ++k) {
    if (scalarArg[k]) {
      hoisted.push_back(Value(handles[k + 1][Value(0)]));
    } else {
      hoisted.push_back(Value(0));  // unused slot
    }
  }

  std::function<Value(const ExpNodePtr&, const Value&)> lower =
      [&](const ExpNodePtr& n, const Value& i) -> Value {
    switch (n->kind) {
      case ExpNode::Kind::Ref: {
        std::size_t k = 0;
        while (k < refs.size() && refs[k] != n->tensor) ++k;
        return scalarArg[k] ? hoisted[k] : Value(handles[k + 1][i]);
      }
      case ExpNode::Kind::Const:
        return Value(n->constant);
      case ExpNode::Kind::Binary: {
        Value a = lower(n->a, i);
        Value b = lower(n->b, i);
        switch (n->bop) {
          case BinOp::Add: return a + b;
          case BinOp::Sub: return a - b;
          case BinOp::Mul: return a * b;
          case BinOp::Div: return a / b;
          case BinOp::Mod: return a % b;
          case BinOp::Lt: return a < b;
          case BinOp::Le: return a <= b;
          case BinOp::Gt: return a > b;
          case BinOp::Ge: return a >= b;
          case BinOp::Eq: return a == b;
          case BinOp::Ne: return a != b;
          case BinOp::And: return a && b;
          case BinOp::Or: return a || b;
          case BinOp::Min: return Min(a, b);
          case BinOp::Max: return Max(a, b);
        }
        GRAPHENE_UNREACHABLE("bad binop");
      }
      case ExpNode::Kind::Unary: {
        Value a = lower(n->a, i);
        switch (n->uop) {
          case UnOp::Neg: return -a;
          case UnOp::Abs: return Abs(a);
          case UnOp::Sqrt: return Sqrt(a);
          case UnOp::Not: return !a;
        }
        GRAPHENE_UNREACHABLE("bad unop");
      }
      case ExpNode::Kind::Cast:
        return lower(n->a, i).cast(n->type);
      case ExpNode::Kind::Select:
        return Select(lower(n->a, i), lower(n->b, i), lower(n->c, i));
    }
    GRAPHENE_UNREACHABLE("bad node kind");
  };

  {
    Value dstHandle = handles[0];
    For(0, dstHandle.size(), 1, [&](Value i) {
      dstHandle[i] = lower(node_, i);
    });
  }
  CodeletIR ir = builder.finish();

  // Register codelet + one vertex per tile with data.
  const ipu::CostModel cost = g.costModel();
  const std::size_t workers = g.target().workersPerTile;
  graph::CodeletId codeletId = g.addCodelet(
      makeCodelet(ctx.freshName("ew"), std::move(ir), cost, workers));

  graph::ComputeSetId cs = g.addComputeSet(category);
  for (std::size_t tile = 0; tile < g.target().totalTiles(); ++tile) {
    if (dstInfo.mapping.sizePerTile[tile] == 0) continue;
    graph::Vertex v;
    v.codelet = codeletId;
    v.tile = tile;
    v.args.push_back(graph::TensorSlice{
        dst.id(), tile, 0, dstInfo.mapping.sizePerTile[tile]});
    for (graph::TensorId rid : refs) {
      const auto& rinfo = g.tensor(rid);
      v.args.push_back(graph::TensorSlice{
          rid, tile, 0, rinfo.mapping.sizePerTile[tile]});
    }
    g.addVertex(cs, std::move(v));
  }
  ctx.emit(graph::Program::execute(cs));
}

Tensor Expression::materialize(const std::string& category) const {
  Context& ctx = Context::current();
  graph::Graph& g = ctx.graph();
  std::vector<graph::TensorId> refs;
  detail::collectRefs(node_, refs);

  // Result shape: the common non-scalar mapping, else a replicated scalar.
  const graph::TileMapping* mapping = nullptr;
  for (graph::TensorId id : refs) {
    const auto& info = g.tensor(id);
    if (!detail::tensorIsScalarShaped(info)) {
      mapping = &info.mapping;
      break;
    }
  }
  Tensor dst = mapping ? Tensor(node_->type, *mapping)
                       : Tensor::scalar(node_->type);
  materializeInto(dst, category);
  return dst;
}

bool Expression::isScalarShaped() const { return exprIsScalarShaped(node_); }

namespace {

/// The accumulator combine step for a reduction kind. (AbsMax combines with
/// Max(acc, Abs(v)); partials are already non-negative, so re-applying Abs
/// at later levels is a harmless identity.)
Value combineReduce(ReduceKind kind, const Value& acc, const Value& v) {
  switch (kind) {
    case ReduceKind::Sum: return acc + v;
    case ReduceKind::Max: return Max(acc, v);
    case ReduceKind::Min: return Min(acc, v);
    case ReduceKind::AbsMax: return Max(acc, Abs(v));
  }
  GRAPHENE_UNREACHABLE("bad reduce kind");
}

/// Lowers an expression tree to codelet IR at loop index `i`, resolving Ref
/// nodes against `refs` (handle k+1 of `handles`; scalar-shaped operands
/// were hoisted).
Value lowerReduceExpr(const ExpNodePtr& n, const Value& i,
                      const std::vector<graph::TensorId>& refs,
                      const std::vector<Value>& handles,
                      const std::vector<Value>& hoisted,
                      const std::vector<bool>& scalarArg) {
  auto lower = [&](const ExpNodePtr& node, const Value& idx) {
    return lowerReduceExpr(node, idx, refs, handles, hoisted, scalarArg);
  };
  switch (n->kind) {
    case ExpNode::Kind::Ref: {
      std::size_t k = 0;
      while (k < refs.size() && refs[k] != n->tensor) ++k;
      return scalarArg[k] ? hoisted[k] : Value(handles[k + 1][i]);
    }
    case ExpNode::Kind::Const: return Value(n->constant);
    case ExpNode::Kind::Binary: {
      Value a = lower(n->a, i), b = lower(n->b, i);
      switch (n->bop) {
        case BinOp::Add: return a + b;
        case BinOp::Sub: return a - b;
        case BinOp::Mul: return a * b;
        case BinOp::Div: return a / b;
        case BinOp::Mod: return a % b;
        case BinOp::Lt: return a < b;
        case BinOp::Le: return a <= b;
        case BinOp::Gt: return a > b;
        case BinOp::Ge: return a >= b;
        case BinOp::Eq: return a == b;
        case BinOp::Ne: return a != b;
        case BinOp::And: return a && b;
        case BinOp::Or: return a || b;
        case BinOp::Min: return Min(a, b);
        case BinOp::Max: return Max(a, b);
      }
      GRAPHENE_UNREACHABLE("bad binop");
    }
    case ExpNode::Kind::Unary: {
      Value a = lower(n->a, i);
      switch (n->uop) {
        case UnOp::Neg: return -a;
        case UnOp::Abs: return Abs(a);
        case UnOp::Sqrt: return Sqrt(a);
        case UnOp::Not: return !a;
      }
      GRAPHENE_UNREACHABLE("bad unop");
    }
    case ExpNode::Kind::Cast: return lower(n->a, i).cast(n->type);
    case ExpNode::Kind::Select:
      return Select(lower(n->a, i), lower(n->b, i), lower(n->c, i));
  }
  GRAPHENE_UNREACHABLE("bad node kind");
}

/// Emits a combine codelet reducing `groups` strided k-vectors (argument 0)
/// into k scalar outputs (arguments firstOutArg .. firstOutArg+k-1):
/// out_j = combine over g of data[g*k + j], with `groups` the constant trip
/// count.
void emitStridedCombine(ReduceKind kind, std::size_t k, const Value& data,
                        std::size_t groups, int firstOutArg, DType accType) {
  for (std::size_t j = 0; j < k; ++j) {
    Value acc(data[Value(static_cast<int>(j))]);
    For(1, Value(static_cast<int>(groups)), 1, [&](Value i) {
      Value idx = k == 1 ? Value(i)
                         : Value(i * Value(static_cast<int>(k)) +
                                 Value(static_cast<int>(j)));
      acc = combineReduce(kind, acc, Value(data[idx]));
    });
    Value out = Value::argument(firstOutArg + static_cast<int>(j), accType);
    out[Value(0)] = acc;
  }
}

/// Shared implementation of Expression::reduce (k == 1) and ReduceMany:
/// one fused per-tile partial compute set for all k expressions, one
/// gather, one final combine, one broadcast. On a pod with two-level
/// reductions the gather runs in two hops — tiles to a per-IPU leader over
/// the on-chip fabric, then one k-vector per IPU over the links — so link
/// traffic per reduction is O(numIpus), not O(tiles). The optional
/// `overlap` callback is emitted between the (first) gather and the final
/// combine: work placed there hides the reduction's communication latency.
std::vector<Tensor> reduceManyImpl(const std::vector<Expression>& exprs,
                                   ReduceKind kind,
                                   const std::function<void()>& overlap) {
  Context& ctx = Context::current();
  graph::Graph& g = ctx.graph();
  const std::size_t k = exprs.size();
  GRAPHENE_CHECK(k > 0, "ReduceMany needs at least one expression");
  const std::size_t nTiles = g.target().totalTiles();
  const DType accType = exprs[0].node()->type;
  for (const Expression& e : exprs) {
    GRAPHENE_CHECK(e.node()->type == accType,
                   "joint reductions must share one dtype");
  }

  // Union of referenced tensors across all expressions (first-seen order;
  // collectRefs deduplicates).
  std::vector<graph::TensorId> refs;
  for (const Expression& e : exprs) detail::collectRefs(e.node(), refs);

  std::vector<bool> scalarArg(refs.size());
  for (std::size_t a = 0; a < refs.size(); ++a) {
    scalarArg[a] = detail::tensorIsScalarShaped(g.tensor(refs[a]));
  }
  // Within each expression all non-scalar refs must share one mapping; find
  // each expression's loop handle for its per-tile bounds.
  std::vector<std::size_t> loopArg(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<graph::TensorId> own;
    detail::collectRefs(exprs[j].node(), own);
    int arg = -1;
    const graph::TileMapping* mapping = nullptr;
    for (graph::TensorId id : own) {
      const auto& info = g.tensor(id);
      if (detail::tensorIsScalarShaped(info)) continue;
      if (mapping == nullptr) {
        mapping = &info.mapping;
        for (std::size_t a = 0; a < refs.size(); ++a) {
          if (refs[a] == id) arg = static_cast<int>(a);
        }
      } else {
        GRAPHENE_CHECK(info.mapping == *mapping,
                       "reduce operands must share one tile mapping");
      }
    }
    GRAPHENE_CHECK(arg >= 0, "reduce needs a non-scalar operand");
    loopArg[j] = static_cast<std::size_t>(arg);
  }

  // Step 1: fused per-tile partial reduction — k accumulators, one pass.
  Tensor partial(accType,
                 k == 1 ? graph::TileMapping::replicated(nTiles)
                        : graph::TileMapping::ragged(
                              std::vector<std::size_t>(nTiles, k)),
                 ctx.freshName("partial"));
  {
    CodeletBuilder builder;
    builder.setNumArgs(1 + refs.size());
    std::vector<Value> handles;
    handles.push_back(Value::argument(0, accType));
    for (std::size_t a = 0; a < refs.size(); ++a) {
      handles.push_back(
          Value::argument(static_cast<int>(a + 1), g.tensor(refs[a]).dtype));
    }
    std::vector<Value> hoisted;
    for (std::size_t a = 0; a < refs.size(); ++a) {
      hoisted.push_back(scalarArg[a] ? Value(handles[a + 1][Value(0)])
                                     : Value(0));
    }
    // Initialise each accumulator from element 0 (identity-free: works for
    // Max/Min too; an empty tile region keeps the zero initialiser).
    for (std::size_t j = 0; j < k; ++j) {
      const ExpNodePtr& node = exprs[j].node();
      Value acc(Scalar::zero(accType));
      Value loopHandle = handles[loopArg[j] + 1];
      If(loopHandle.size() > 0, [&] {
        Value first = lowerReduceExpr(node, Value(0), refs, handles,
                                      hoisted, scalarArg);
        acc = kind == ReduceKind::AbsMax ? Abs(first) : first;
      });
      For(1, loopHandle.size(), 1, [&](Value i) {
        acc = combineReduce(kind, acc,
                            lowerReduceExpr(node, i, refs, handles,
                                            hoisted, scalarArg));
      });
      Value out = handles[0];
      out[Value(static_cast<int>(j))] = acc;
    }

    CodeletIR ir = builder.finish();
    const ipu::CostModel cost = g.costModel();
    const std::size_t workers = g.target().workersPerTile;
    graph::CodeletId codeletId = g.addCodelet(makeCodelet(
        ctx.freshName("reduce_partial"), std::move(ir), cost, workers));
    graph::ComputeSetId cs = g.addComputeSet("reduce");
    for (std::size_t tile = 0; tile < nTiles; ++tile) {
      graph::Vertex v;
      v.codelet = codeletId;
      v.tile = tile;
      v.args.push_back(graph::TensorSlice{partial.id(), tile, 0, k});
      for (graph::TensorId rid : refs) {
        const auto& rinfo = g.tensor(rid);
        v.args.push_back(graph::TensorSlice{
            rid, tile, 0, rinfo.mapping.sizePerTile[tile]});
      }
      g.addVertex(cs, std::move(v));
    }
    ctx.emit(graph::Program::execute(cs));
  }

  const std::size_t ctrl = g.controlTile();
  const ipu::IpuTarget& target = g.target();
  const bool twoLevel = g.twoLevelReduce() && target.numIpus > 1;

  // Created after the gather below so tensor naming and ids match the
  // historical single-reduction emission.
  std::vector<Tensor> outs;
  auto makeOuts = [&] {
    for (std::size_t j = 0; j < k; ++j) {
      outs.emplace_back(Tensor::scalar(accType, ctx.freshName("reduced")));
    }
  };

  if (!twoLevel) {
    // Step 2 (flat): gather every tile's partial k-vector on the control
    // tile (tile 0 unless a resilience layer moved control off a
    // blacklisted tile).
    Tensor gathered(accType,
                    graph::TileMapping::onTile(nTiles * k, ctrl, nTiles),
                    ctx.freshName("gather"));
    {
      std::vector<graph::CopySegment> segs;
      segs.reserve(nTiles);
      for (std::size_t tile = 0; tile < nTiles; ++tile) {
        graph::CopySegment s;
        s.src = partial.id();
        s.srcTile = tile;
        s.srcBegin = 0;
        s.dst = gathered.id();
        s.dsts.push_back({ctrl, tile * k});
        s.count = k;
        segs.push_back(std::move(s));
      }
      ctx.emit(graph::Program::copy(std::move(segs)));
    }
    if (overlap) overlap();
    makeOuts();

    // Step 3 (flat): final combine on the control tile.
    {
      CodeletBuilder builder;
      builder.setNumArgs(1 + k);
      Value gHandle = Value::argument(0, accType);
      if (k == 1) {
        // Transcription of the historical single-reduction combine: the
        // emitted IR (and hence the simulated cycle count) must not change
        // under refactoring.
        Value oHandle = Value::argument(1, accType);
        Value acc(gHandle[Value(0)]);
        For(1, gHandle.size(), 1,
            [&](Value i) { acc = combineReduce(kind, acc, Value(gHandle[i])); });
        oHandle[Value(0)] = acc;
      } else {
        emitStridedCombine(kind, k, gHandle, nTiles, 1, accType);
      }
      CodeletIR ir = builder.finish();
      const ipu::CostModel cost = g.costModel();
      const std::size_t workers = g.target().workersPerTile;
      graph::CodeletId codeletId = g.addCodelet(makeCodelet(
          ctx.freshName("reduce_final"), std::move(ir), cost, workers));
      graph::ComputeSetId cs = g.addComputeSet("reduce");
      graph::Vertex v;
      v.codelet = codeletId;
      v.tile = ctrl;
      v.args.push_back(graph::TensorSlice{gathered.id(), ctrl, 0, nTiles * k});
      for (std::size_t j = 0; j < k; ++j) {
        v.args.push_back(graph::TensorSlice{outs[j].id(), ctrl, 0, 1});
      }
      g.addVertex(cs, std::move(v));
      ctx.emit(graph::Program::execute(cs));
    }
  } else {
    // Two-level: tiles → per-IPU leader over the on-chip fabric, leaders →
    // control tile over the links (one k-vector per IPU), then combine.
    const std::size_t P = target.tilesPerIpu;
    const std::size_t I = target.numIpus;
    std::vector<std::size_t> leader(I, SIZE_MAX);
    for (std::size_t ipu = 0; ipu < I; ++ipu) {
      for (std::size_t t = ipu * P; t < (ipu + 1) * P; ++t) {
        if (!g.tileExcluded(t)) {
          leader[ipu] = t;
          break;
        }
      }
    }
    // Keep control's own IPU anchored on the control tile so its hop in the
    // link-gather step below is local.
    if (leader[ctrl / P] != SIZE_MAX && !g.tileExcluded(ctrl)) {
      leader[ctrl / P] = ctrl;
    }

    // Step 2a: intra-IPU gather (leader collects its chip's partials).
    std::vector<std::size_t> lgSizes(nTiles, 0);
    for (std::size_t ipu = 0; ipu < I; ++ipu) {
      if (leader[ipu] != SIZE_MAX) lgSizes[leader[ipu]] = P * k;
    }
    Tensor lgather(accType, graph::TileMapping::ragged(lgSizes),
                   ctx.freshName("gather"));
    {
      std::vector<graph::CopySegment> segs;
      for (std::size_t ipu = 0; ipu < I; ++ipu) {
        if (leader[ipu] == SIZE_MAX) continue;  // whole chip dead
        for (std::size_t t = ipu * P; t < (ipu + 1) * P; ++t) {
          graph::CopySegment s;
          s.src = partial.id();
          s.srcTile = t;
          s.srcBegin = 0;
          s.dst = lgather.id();
          s.dsts.push_back({leader[ipu], (t - ipu * P) * k});
          s.count = k;
          segs.push_back(std::move(s));
        }
      }
      ctx.emit(graph::Program::copy(std::move(segs)));
    }
    if (overlap) overlap();

    // Step 2b: leader combine — one k-vector per surviving IPU. Dead tiles
    // contributed their zero-initialised partials, same as the flat gather.
    std::vector<std::size_t> lpSizes(nTiles, 0);
    for (std::size_t ipu = 0; ipu < I; ++ipu) {
      if (leader[ipu] != SIZE_MAX) lpSizes[leader[ipu]] = k;
    }
    Tensor lpartial(accType, graph::TileMapping::ragged(lpSizes),
                    ctx.freshName("ipu_partial"));
    {
      CodeletBuilder builder;
      builder.setNumArgs(2);
      Value gHandle = Value::argument(0, accType);
      Value pHandle = Value::argument(1, accType);
      // The leader's k outputs live in one slice (unlike the final combine's
      // k separate scalars), so combine with per-j output offsets here.
      for (std::size_t j = 0; j < k; ++j) {
        Value acc(gHandle[Value(static_cast<int>(j))]);
        For(1, Value(static_cast<int>(P)), 1, [&](Value i) {
          Value idx = k == 1 ? i
                             : Value(i * Value(static_cast<int>(k)) +
                                     Value(static_cast<int>(j)));
          acc = combineReduce(kind, acc, Value(gHandle[idx]));
        });
        pHandle[Value(static_cast<int>(j))] = acc;
      }
      CodeletIR ir = builder.finish();
      const ipu::CostModel cost = g.costModel();
      const std::size_t workers = g.target().workersPerTile;
      graph::CodeletId codeletId = g.addCodelet(makeCodelet(
          ctx.freshName("reduce_leader"), std::move(ir), cost, workers));
      graph::ComputeSetId cs = g.addComputeSet("reduce");
      for (std::size_t ipu = 0; ipu < I; ++ipu) {
        if (leader[ipu] == SIZE_MAX) continue;
        graph::Vertex v;
        v.codelet = codeletId;
        v.tile = leader[ipu];
        v.args.push_back(
            graph::TensorSlice{lgather.id(), leader[ipu], 0, P * k});
        v.args.push_back(
            graph::TensorSlice{lpartial.id(), leader[ipu], 0, k});
        g.addVertex(cs, std::move(v));
      }
      ctx.emit(graph::Program::execute(cs));
    }

    // Step 2c: link gather — one k-vector per IPU crosses to control.
    Tensor gathered(accType, graph::TileMapping::onTile(I * k, ctrl, nTiles),
                    ctx.freshName("gather"));
    {
      std::vector<graph::CopySegment> segs;
      for (std::size_t ipu = 0; ipu < I; ++ipu) {
        if (leader[ipu] == SIZE_MAX) continue;  // zeros remain for dead chips
        graph::CopySegment s;
        s.src = lpartial.id();
        s.srcTile = leader[ipu];
        s.srcBegin = 0;
        s.dst = gathered.id();
        s.dsts.push_back({ctrl, ipu * k});
        s.count = k;
        segs.push_back(std::move(s));
      }
      ctx.emit(graph::Program::copy(std::move(segs)));
    }

    // Step 3 (two-level): combine the per-IPU scalars on the control tile.
    makeOuts();
    {
      CodeletBuilder builder;
      builder.setNumArgs(1 + k);
      Value gHandle = Value::argument(0, accType);
      emitStridedCombine(kind, k, gHandle, I, 1, accType);
      CodeletIR ir = builder.finish();
      const ipu::CostModel cost = g.costModel();
      const std::size_t workers = g.target().workersPerTile;
      graph::CodeletId codeletId = g.addCodelet(makeCodelet(
          ctx.freshName("reduce_final"), std::move(ir), cost, workers));
      graph::ComputeSetId cs = g.addComputeSet("reduce");
      graph::Vertex v;
      v.codelet = codeletId;
      v.tile = ctrl;
      v.args.push_back(graph::TensorSlice{gathered.id(), ctrl, 0, I * k});
      for (std::size_t j = 0; j < k; ++j) {
        v.args.push_back(graph::TensorSlice{outs[j].id(), ctrl, 0, 1});
      }
      g.addVertex(cs, std::move(v));
      ctx.emit(graph::Program::execute(cs));
    }
  }

  // Step 4: broadcast every result to every tile's replica (one exchange
  // superstep; over links the payload crosses once per destination IPU).
  if (nTiles > 1) {
    std::vector<graph::CopySegment> segs;
    for (std::size_t j = 0; j < k; ++j) {
      graph::CopySegment s;
      s.src = outs[j].id();
      s.srcTile = ctrl;
      s.srcBegin = 0;
      s.dst = outs[j].id();
      s.count = 1;
      for (std::size_t tile = 0; tile < nTiles; ++tile) {
        if (tile != ctrl) s.dsts.push_back({tile, 0});
      }
      segs.push_back(std::move(s));
    }
    ctx.emit(graph::Program::copy(std::move(segs)));
  }

  return outs;
}

}  // namespace

Expression Expression::reduce(ReduceKind kind) const {
  // Reducing a scalar-shaped expression is the expression itself (AbsMax
  // still applies its elementwise transform).
  if (exprIsScalarShaped(node_)) {
    Tensor out = kind == ReduceKind::AbsMax
                     ? Abs(*this).materialize("reduce")
                     : materialize("reduce");
    return Expression(out);
  }
  return Expression(reduceManyImpl({*this}, kind, nullptr)[0]);
}

std::vector<Tensor> ReduceMany(const std::vector<Expression>& exprs,
                               ReduceKind kind,
                               const std::function<void()>& overlap) {
  for (const Expression& e : exprs) {
    GRAPHENE_CHECK(!e.isScalarShaped(),
                   "ReduceMany expressions need a non-scalar operand");
  }
  return reduceManyImpl(exprs, kind, overlap);
}

// ---------------------------------------------------------------------------
// Control flow
// ---------------------------------------------------------------------------

namespace {

/// Materialises `cond` into a fresh replicated Bool scalar inside a new
/// program sequence; returns (sequence, tensorId).
std::pair<graph::ProgramPtr, graph::TensorId> buildCondition(
    const Expression& cond) {
  Context& ctx = Context::current();
  GRAPHENE_CHECK(cond.isScalarShaped(),
                 "control-flow conditions must be scalar expressions");
  ctx.pushSequence();
  Tensor condT = Tensor::scalar(DType::Bool, ctx.freshName("cond"));
  Expression c = cond;
  c.materializeInto(condT, "condition");
  graph::ProgramPtr prog = ctx.popSequence();
  return {prog, condT.id()};
}

}  // namespace

void If(const Expression& cond, const std::function<void()>& then,
        const std::function<void()>& otherwise) {
  Context& ctx = Context::current();
  auto [condProg, condId] = buildCondition(cond);
  ctx.pushSequence();
  then();
  graph::ProgramPtr thenProg = ctx.popSequence();
  graph::ProgramPtr elseProg;
  if (otherwise) {
    ctx.pushSequence();
    otherwise();
    elseProg = ctx.popSequence();
  }
  ctx.emit(graph::Program::branch(condProg, condId, thenProg, elseProg));
}

void While(const Expression& cond, const std::function<void()>& body) {
  Context& ctx = Context::current();
  auto [condProg, condId] = buildCondition(cond);
  ctx.pushSequence();
  body();
  graph::ProgramPtr bodyProg = ctx.popSequence();
  ctx.emit(graph::Program::repeatWhile(condProg, condId, bodyProg));
}

void Repeat(std::size_t times, const std::function<void()>& body) {
  Context& ctx = Context::current();
  ctx.pushSequence();
  body();
  graph::ProgramPtr bodyProg = ctx.popSequence();
  ctx.emit(graph::Program::repeat(times, bodyProg));
}

void Print(const std::string& label, const Tensor& t) {
  graph::TensorId id = t.id();
  Context::current().emit(
      graph::Program::hostCall([label, id](graph::Engine& engine) {
        const auto& info = engine.graph().tensor(id);
        std::size_t n = std::min<std::size_t>(info.totalElements(),
                                              info.replicated ? 1 : 8);
        std::cout << label << ":";
        for (std::size_t i = 0; i < n; ++i) {
          std::cout << " " << engine.loadElement(id, i).toString();
        }
        if (!info.replicated && info.totalElements() > n) std::cout << " ...";
        std::cout << "\n";
      }));
}

void HostCall(std::function<void(graph::Engine&)> fn) {
  Context::current().emit(graph::Program::hostCall(std::move(fn)));
}

// ---------------------------------------------------------------------------
// Execute — CodeDSL entry point
// ---------------------------------------------------------------------------

graph::ComputeSetId ExecuteOnTiles(
    const std::vector<TensorRef>& tensors,
    const std::function<void(std::vector<Value>&)>& fn,
    const std::string& category, const std::vector<std::size_t>& tiles) {
  Context& ctx = Context::current();
  graph::Graph& g = ctx.graph();

  CodeletBuilder builder;
  builder.setNumArgs(tensors.size());
  std::vector<Value> handles;
  handles.reserve(tensors.size());
  for (std::size_t k = 0; k < tensors.size(); ++k) {
    handles.push_back(Value::argument(static_cast<int>(k),
                                      g.tensor(tensors[k].id()).dtype));
  }
  fn(handles);
  CodeletIR ir = builder.finish();

  const ipu::CostModel cost = g.costModel();
  const std::size_t workers = g.target().workersPerTile;
  graph::CodeletId codeletId = g.addCodelet(
      makeCodelet(ctx.freshName("codelet"), std::move(ir), cost, workers));

  std::vector<std::size_t> vertexTiles = tiles;
  if (vertexTiles.empty()) {
    for (std::size_t tile = 0; tile < g.target().totalTiles(); ++tile) {
      for (const TensorRef& t : tensors) {
        if (g.tensor(t.id()).mapping.sizePerTile[tile] > 0) {
          vertexTiles.push_back(tile);
          break;
        }
      }
    }
  }

  graph::ComputeSetId cs = g.addComputeSet(category);
  for (std::size_t tile : vertexTiles) {
    graph::Vertex v;
    v.codelet = codeletId;
    v.tile = tile;
    for (const TensorRef& t : tensors) {
      const auto& info = g.tensor(t.id());
      v.args.push_back(graph::TensorSlice{
          t.id(), tile, 0, info.mapping.sizePerTile[tile]});
    }
    g.addVertex(cs, std::move(v));
  }
  ctx.emit(graph::Program::execute(cs));
  return cs;
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(std::vector<Value>&)>& fn,
             const std::string& category) {
  ExecuteOnTiles(tensors, fn, category, {});
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value)>& fn,
             const std::string& category) {
  GRAPHENE_CHECK(tensors.size() == 1, "Execute arity mismatch");
  Execute(tensors, [&](std::vector<Value>& args) { fn(args[0]); }, category);
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value)>& fn,
             const std::string& category) {
  GRAPHENE_CHECK(tensors.size() == 2, "Execute arity mismatch");
  Execute(tensors,
          [&](std::vector<Value>& args) { fn(args[0], args[1]); }, category);
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value, Value)>& fn,
             const std::string& category) {
  GRAPHENE_CHECK(tensors.size() == 3, "Execute arity mismatch");
  Execute(tensors,
          [&](std::vector<Value>& args) { fn(args[0], args[1], args[2]); },
          category);
}

void Execute(const std::vector<TensorRef>& tensors,
             const std::function<void(Value, Value, Value, Value)>& fn,
             const std::string& category) {
  GRAPHENE_CHECK(tensors.size() == 4, "Execute arity mismatch");
  Execute(tensors,
          [&](std::vector<Value>& args) {
            fn(args[0], args[1], args[2], args[3]);
          },
          category);
}

}  // namespace graphene::dsl
