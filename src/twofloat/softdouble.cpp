#include "twofloat/softdouble.hpp"

#include <cstring>

namespace graphene::twofloat {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr int kExpBits = 11;
constexpr int kFracBits = 52;
constexpr int kBias = 1023;
constexpr u64 kSignMask = 1ull << 63;
constexpr u64 kFracMask = (1ull << kFracBits) - 1;
constexpr u64 kImplicitBit = 1ull << kFracBits;
constexpr int kExpMax = (1 << kExpBits) - 1;  // all-ones exponent: inf/nan
constexpr u64 kQuietNan = 0x7FF8000000000000ull;

/// Unpacked representation with a *normalised* significand: frac always has
/// its leading bit at position 52 (so frac ∈ [2^52, 2^53)), and exp is the
/// (possibly non-positive) biased exponent that makes
///   value = (-1)^sign * (frac / 2^52) * 2^(exp - kBias).
/// Subnormal inputs are normalised here; roundAndPack denormalises on output.
struct Unpacked {
  bool sign;
  int exp;
  u64 frac;
  bool isNan;
  bool isInf;
  bool isZero;
};

Unpacked unpack(u64 bits) {
  Unpacked u{};
  u.sign = (bits & kSignMask) != 0;
  int e = static_cast<int>((bits >> kFracBits) & kExpMax);
  u64 f = bits & kFracMask;
  if (e == kExpMax) {
    u.isNan = f != 0;
    u.isInf = f == 0;
    return u;
  }
  if (e == 0) {
    if (f == 0) {
      u.isZero = true;
      return u;
    }
    // Subnormal: normalise so the leading bit sits at position 52.
    u.exp = 1;
    u.frac = f;
    while ((u.frac & kImplicitBit) == 0) {
      u.frac <<= 1;
      --u.exp;
    }
  } else {
    u.exp = e;
    u.frac = f | kImplicitBit;
  }
  return u;
}

constexpr u64 packInf(bool sign) {
  return (sign ? kSignMask : 0) | (static_cast<u64>(kExpMax) << kFracBits);
}

constexpr u64 packZero(bool sign) { return sign ? kSignMask : 0; }

/// Rounds and packs a significand with 3 extra bits (guard, round, sticky)
/// below the target 53-bit position. `exp` is the biased exponent that the
/// leading (bit 55) position corresponds to. Handles overflow to infinity and
/// underflow to subnormals/zero.
u64 roundAndPack(bool sign, int exp, u64 sig) {
  // sig layout: [bit 55 .. bit 3] significand, [bit 2..0] grs.
  // Normalise so the leading 1 is at bit 55 (i.e. value in [1, 2)).
  if (sig == 0) return packZero(sign);
  while (sig < (1ull << 55)) {
    sig <<= 1;
    --exp;
  }
  while (sig >= (1ull << 56)) {
    sig = (sig >> 1) | (sig & 1);  // keep sticky
    ++exp;
  }
  if (exp >= kExpMax) return packInf(sign);
  if (exp <= 0) {
    // Subnormal: shift right until exp == 1, accumulating sticky.
    int shift = 1 - exp;
    if (shift > 58) {
      sig = (sig != 0) ? 1 : 0;  // everything is sticky
    } else {
      u64 sticky = (sig & ((1ull << shift) - 1)) != 0 ? 1 : 0;
      sig = (sig >> shift) | sticky;
    }
    exp = 1;
    // After the shift the implicit position may be empty — that is what makes
    // the result subnormal. Round below, then detect whether it became 0 exp.
    u64 grs = sig & 7;
    u64 mant = sig >> 3;
    if (grs > 4 || (grs == 4 && (mant & 1))) ++mant;
    if (mant >= kImplicitBit) {
      // Rounded back up into the normal range.
      return (sign ? kSignMask : 0) | (1ull << kFracBits) |
             ((mant - kImplicitBit) & kFracMask);
    }
    return (sign ? kSignMask : 0) | mant;  // exponent field 0: subnormal
  }
  u64 grs = sig & 7;
  u64 mant = sig >> 3;
  if (grs > 4 || (grs == 4 && (mant & 1))) ++mant;
  if (mant >= (1ull << 56 >> 3) * 2) {  // carry out of the 53-bit significand
    mant >>= 1;
    ++exp;
    if (exp >= kExpMax) return packInf(sign);
  }
  return (sign ? kSignMask : 0) | (static_cast<u64>(exp) << kFracBits) |
         (mant & kFracMask);
}

/// Magnitude addition/subtraction with correct rounding. Returns packed bits.
u64 addBits(u64 ab, u64 bb) {
  Unpacked a = unpack(ab);
  Unpacked b = unpack(bb);
  if (a.isNan || b.isNan) return kQuietNan;
  if (a.isInf) {
    if (b.isInf && a.sign != b.sign) return kQuietNan;  // inf - inf
    return packInf(a.sign);
  }
  if (b.isInf) return packInf(b.sign);
  if (a.isZero && b.isZero) {
    // +0 + -0 = +0 under round-to-nearest.
    return (a.sign && b.sign) ? packZero(true) : packZero(false);
  }
  if (a.isZero) return bb;
  if (b.isZero) return ab;

  // Work with significands extended by 3 grs bits at bit position 3.
  // Align to the larger exponent.
  if (a.exp < b.exp || (a.exp == b.exp && a.frac < b.frac)) {
    std::swap(a, b);
  }
  u64 asig = a.frac << 3;
  u64 bsig = b.frac << 3;
  int shift = a.exp - b.exp;
  if (shift > 60) {
    bsig = 1;  // pure sticky
  } else if (shift > 0) {
    u64 sticky = (bsig & ((1ull << shift) - 1)) != 0 ? 1 : 0;
    bsig = (bsig >> shift) | sticky;
  }
  bool sign;
  u64 sig;
  if (a.sign == b.sign) {
    sign = a.sign;
    sig = asig + bsig;
  } else {
    sign = a.sign;
    sig = asig - bsig;
    if (sig == 0) return packZero(false);
  }
  return roundAndPack(sign, a.exp, sig);
}

u64 mulBits(u64 ab, u64 bb) {
  Unpacked a = unpack(ab);
  Unpacked b = unpack(bb);
  bool sign = a.sign != b.sign;
  if (a.isNan || b.isNan) return kQuietNan;
  if (a.isInf || b.isInf) {
    if (a.isZero || b.isZero) return kQuietNan;  // inf * 0
    return packInf(sign);
  }
  if (a.isZero || b.isZero) return packZero(sign);

  // 53 x 53 -> 106-bit product.
  u128 prod = static_cast<u128>(a.frac) * static_cast<u128>(b.frac);
  // a.frac, b.frac in [2^52, 2^53) for normals => prod in [2^104, 2^106).
  // Position the result so the leading bit lands near bit 55 with grs below.
  // We take the top 56 bits and fold the rest into sticky.
  int exp = a.exp + b.exp - kBias + 1;
  // Shift so that a product with leading bit at position 105 maps to bit 55.
  int shift = 105 - 55;
  u64 lowMask = (static_cast<u128>(1) << shift) - 1;
  u64 sticky = (prod & lowMask) != 0 ? 1 : 0;
  u64 sig = static_cast<u64>(prod >> shift) | sticky;
  // If the leading bit was at 104 instead of 105, roundAndPack's
  // normalisation loop fixes it (and adjusts exp).
  return roundAndPack(sign, exp, sig);
}

u64 divBits(u64 ab, u64 bb) {
  Unpacked a = unpack(ab);
  Unpacked b = unpack(bb);
  bool sign = a.sign != b.sign;
  if (a.isNan || b.isNan) return kQuietNan;
  if (a.isInf) {
    if (b.isInf) return kQuietNan;
    return packInf(sign);
  }
  if (b.isInf) return packZero(sign);
  if (b.isZero) {
    if (a.isZero) return kQuietNan;  // 0/0
    return packInf(sign);
  }
  if (a.isZero) return packZero(sign);

  // Long division: numerator shifted left by 55+3 bits relative to the
  // denominator gives a quotient with the leading bit near position 55..56.
  u128 num = static_cast<u128>(a.frac) << 58;
  u128 den = static_cast<u128>(b.frac);
  u64 quot = static_cast<u64>(num / den);
  u64 rem = static_cast<u64>(num % den);
  u64 sig = quot | (rem != 0 ? 1 : 0);
  // value = quot * 2^-58 * 2^(Ea-Eb); roundAndPack treats sig as a 2^-55
  // fixed-point significand, hence the -3 adjustment.
  int exp = a.exp - b.exp + kBias - 3;
  return roundAndPack(sign, exp, sig);
}

}  // namespace

SoftDouble SoftDouble::fromDouble(double value) {
  u64 bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return fromBits(bits);
}

SoftDouble SoftDouble::fromFloat(float value) {
  // Exact widening: every float is representable as a double; do it in
  // software from the float bit pattern.
  std::uint32_t fb;
  std::memcpy(&fb, &value, sizeof(fb));
  bool sign = (fb >> 31) != 0;
  int fexp = static_cast<int>((fb >> 23) & 0xFF);
  std::uint32_t frac = fb & 0x7FFFFFu;
  if (fexp == 0xFF) {
    return fromBits((sign ? kSignMask : 0) |
                    (static_cast<u64>(kExpMax) << kFracBits) |
                    (frac != 0 ? 1ull << 51 : 0));
  }
  if (fexp == 0 && frac == 0) return fromBits(packZero(sign));
  int exp;
  u64 mant;
  if (fexp == 0) {
    // Subnormal float: normalise.
    exp = -126;
    mant = frac;
    while ((mant & (1ull << 23)) == 0) {
      mant <<= 1;
      --exp;
    }
    mant &= (1ull << 23) - 1;
  } else {
    exp = fexp - 127;
    mant = frac;
  }
  u64 dexp = static_cast<u64>(exp + kBias);
  return fromBits((sign ? kSignMask : 0) | (dexp << kFracBits) | (mant << 29));
}

double SoftDouble::toDouble() const {
  double d;
  std::memcpy(&d, &bits_, sizeof(d));
  return d;
}

float SoftDouble::toFloat() const {
  Unpacked u = unpack(bits_);
  if (u.isNan) {
    std::uint32_t fb = 0x7FC00000u;
    float f;
    std::memcpy(&f, &fb, sizeof(f));
    return f;
  }
  if (u.isInf || u.isZero) {
    std::uint32_t fb = (u.sign ? 0x80000000u : 0u) |
                       (u.isInf ? 0x7F800000u : 0u);
    float f;
    std::memcpy(&f, &fb, sizeof(f));
    return f;
  }
  // Narrow 53-bit significand to 24 bits with round-to-nearest-even.
  int exp = u.exp - kBias;        // unbiased
  u64 sig = u.frac;               // 53 bits with implicit for normals
  // Normalise subnormal doubles.
  while ((sig & kImplicitBit) == 0) {
    sig <<= 1;
    --exp;
  }
  int fexp = exp + 127;
  std::uint32_t fb = u.sign ? 0x80000000u : 0u;
  if (fexp >= 0xFF) {
    fb |= 0x7F800000u;  // overflow to inf
  } else if (fexp <= 0) {
    // Subnormal or zero in float.
    int shift = 29 + 1 - fexp;  // 29 = 52-23
    if (shift >= 60) {
      // underflows to zero
    } else {
      u64 sticky = (sig & ((1ull << (shift - 1)) - 1)) != 0 ? 1 : 0;
      u64 mant = sig >> shift;
      u64 roundBit = (sig >> (shift - 1)) & 1;
      if (roundBit && (sticky || (mant & 1))) ++mant;
      fb |= static_cast<std::uint32_t>(mant);
    }
  } else {
    u64 sticky = (sig & ((1ull << 28) - 1)) != 0 ? 1 : 0;
    u64 mant = sig >> 29;
    u64 roundBit = (sig >> 28) & 1;
    if (roundBit && (sticky || (mant & 1))) ++mant;
    if (mant >= (1ull << 24)) {
      mant >>= 1;
      ++fexp;
      if (fexp >= 0xFF) {
        fb |= 0x7F800000u;
        float f;
        std::memcpy(&f, &fb, sizeof(f));
        return f;
      }
    }
    fb |= static_cast<std::uint32_t>(fexp) << 23;
    fb |= static_cast<std::uint32_t>(mant & ((1ull << 23) - 1));
  }
  float f;
  std::memcpy(&f, &fb, sizeof(f));
  return f;
}

bool SoftDouble::isNan() const {
  return ((bits_ >> kFracBits) & kExpMax) == static_cast<u64>(kExpMax) &&
         (bits_ & kFracMask) != 0;
}

bool SoftDouble::isInf() const {
  return ((bits_ >> kFracBits) & kExpMax) == static_cast<u64>(kExpMax) &&
         (bits_ & kFracMask) == 0;
}

bool SoftDouble::isZero() const {
  return (bits_ & ~kSignMask) == 0;
}

SoftDouble operator+(SoftDouble a, SoftDouble b) {
  return SoftDouble::fromBits(addBits(a.bits_, b.bits_));
}

SoftDouble operator-(SoftDouble a, SoftDouble b) {
  return SoftDouble::fromBits(addBits(a.bits_, b.bits_ ^ kSignMask));
}

SoftDouble operator*(SoftDouble a, SoftDouble b) {
  return SoftDouble::fromBits(mulBits(a.bits_, b.bits_));
}

SoftDouble operator/(SoftDouble a, SoftDouble b) {
  return SoftDouble::fromBits(divBits(a.bits_, b.bits_));
}

SoftDouble operator-(SoftDouble a) {
  if (a.isNan()) return a;
  return SoftDouble::fromBits(a.bits_ ^ kSignMask);
}

bool operator==(SoftDouble a, SoftDouble b) {
  if (a.isNan() || b.isNan()) return false;
  if (a.isZero() && b.isZero()) return true;  // -0 == +0
  return a.bits_ == b.bits_;
}

bool operator<(SoftDouble a, SoftDouble b) {
  if (a.isNan() || b.isNan()) return false;
  if (a.isZero() && b.isZero()) return false;
  bool as = (a.bits_ & kSignMask) != 0;
  bool bs = (b.bits_ & kSignMask) != 0;
  if (as != bs) return as;
  // Same sign: compare magnitudes; flip for negatives.
  u64 am = a.bits_ & ~kSignMask;
  u64 bm = b.bits_ & ~kSignMask;
  return as ? (am > bm) : (am < bm);
}

bool operator<=(SoftDouble a, SoftDouble b) {
  if (a.isNan() || b.isNan()) return false;
  return a < b || a == b;
}

SoftDouble SoftDouble::sqrt(SoftDouble x) {
  if (x.isNan() || x.isZero()) return x;
  if ((x.bits_ & kSignMask) != 0) return fromBits(kQuietNan);
  if (x.isInf()) return x;
  // Newton iteration y <- (y + x/y) / 2 entirely in software arithmetic,
  // seeded by halving the exponent.
  Unpacked u = unpack(x.bits_);
  int exp = u.exp;  // biased
  int halfExp = ((exp - kBias) / 2) + kBias;
  SoftDouble y = fromBits(static_cast<u64>(halfExp) << kFracBits);
  SoftDouble half = fromBits(0x3FE0000000000000ull);  // 0.5
  for (int i = 0; i < 6; ++i) {
    y = (y + x / y) * half;
  }
  return y;
}

}  // namespace graphene::twofloat
