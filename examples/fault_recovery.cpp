// Fault injection and solver self-healing on the simulated IPU.
//
// Attaches a seeded, JSON-configured fault plan to the engine and solves the
// same MPIR system clean and under fire: one corrupted extended-precision
// residual halo exchange (refinement step 2) plus one corrupted float32 halo
// transfer in the middle of an inner BiCGStab solve. The solvers' guards
// detect the damage — MPIR rolls back to the last good iterate and
// re-refines, the inner solver re-seeds from its checkpoint — and the solve
// still converges. The full fault/repair timeline lands in the profile's
// structured fault log, printed at the end.
//
// A third scenario goes beyond transient damage: a tile dies permanently in
// the middle of a CG solve. The superstep watchdog confirms the death,
// SolveSession blacklists the tile, repartitions the matrix over the
// survivors, migrates the iterate and resumes on the shrunken machine — the
// whole blacklist/remap/resume ladder appears in the fault log.
//
// Usage: ./example_fault_recovery [rows=1200] [tiles=8] [--trace file.json]
//   --trace writes the hard-fault scenario's timeline (compute supersteps,
//   exchanges, injected faults, recovery actions) as Chrome trace JSON —
//   load it in chrome://tracing or Perfetto.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "graph/engine.hpp"
#include "ipu/fault.hpp"
#include "matrix/generators.hpp"
#include "partition/partitioner.hpp"
#include "solver/session.hpp"
#include "solver/solvers.hpp"
#include "support/rng.hpp"
#include "support/trace.hpp"

using namespace graphene;

namespace {

constexpr const char* kSolverJson =
    R"({"type":"mpir","extendedType":"doubleword",
        "maxRefinements":20,"tolerance":1e-11,
        "inner":{"type":"bicgstab","maxIterations":30,"tolerance":0,
                 "preconditioner":{"type":"ilu"}}})";

struct Outcome {
  solver::SolveResult result;
  ipu::Profile profile;
  // Discovered on the clean run: the extended-precision residual halo tensor
  // and how many point-to-point transfers one halo exchange performs. A
  // fault plan can use these to pin a corruption to one specific exchange.
  std::string extHaloName;
  std::size_t transfersPerExchange = 0;
};

Outcome solveWith(const matrix::GeneratedMatrix& problem, std::size_t tiles,
                  ipu::FaultPlan* plan) {
  dsl::Context ctx(ipu::IpuTarget::testTarget(tiles));
  auto layout = partition::Partitioner(ipu::Topology::singleIpu(tiles))
                    .layout(problem);
  const std::size_t perExchange = layout.transfers.size();
  solver::DistMatrix A(problem.matrix, std::move(layout));
  dsl::Tensor x = A.makeVector(dsl::DType::Float32, "x");
  dsl::Tensor b = A.makeVector(dsl::DType::Float32, "b");
  auto solver = solver::makeSolverFromString(kSolverJson);
  solver->apply(A, x, b);

  graph::Engine engine(ctx.graph());
  if (plan != nullptr) {
    plan->reset();
    engine.setFaultPlan(plan);
  }
  A.upload(engine);
  Rng rng(2024);
  std::vector<double> rhs(problem.matrix.rows());
  for (double& v : rhs) {
    v = static_cast<double>(static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  A.writeVector(engine, b, rhs);
  engine.run(ctx.program());

  Outcome out;
  out.result = solver->result();
  out.profile = engine.profile();
  out.transfersPerExchange = perExchange;
  for (std::size_t i = 0; i < ctx.graph().numTensors(); ++i) {
    const auto& info = ctx.graph().tensor(static_cast<graph::TensorId>(i));
    if (info.dtype == dsl::DType::DoubleWord &&
        info.name.rfind("halo", 0) == 0) {
      out.extHaloName = info.name;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string tracePath;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t rows =
      positional.size() > 0 ? std::strtoul(positional[0], nullptr, 10) : 1200;
  const std::size_t tiles =
      positional.size() > 1 ? std::strtoul(positional[1], nullptr, 10) : 8;
  auto problem = matrix::g3CircuitLike(rows);
  std::printf("matrix: %s, %zu rows, %zu nnz, %zu simulated tiles\n\n",
              problem.name.c_str(), problem.matrix.rows(),
              problem.matrix.nnz(), tiles);

  Outcome clean = solveWith(problem, tiles, nullptr);

  // The fault plan, built from what the clean run told us about the program:
  //  - one flipped bit in the DoubleWord residual halo of refinement step 2
  //    (skip = 2 exchanges' worth of transfers into that tensor's traffic);
  //  - one corrupted float32 halo transfer deep inside an inner BiCGStab
  //    solve. Everything is seeded: rerunning this binary reproduces the
  //    exact same fault sequence, byte for byte.
  std::string planJson = R"({
    "seed": 42,
    "faults": [
      {"type": "exchange-corrupt", "tensor": ")" +
                         clean.extHaloName + R"(", "bit": 30,
       "skip": )" + std::to_string(2 * clean.transfersPerExchange) +
                         R"(, "count": 1},
      {"type": "exchange-corrupt", "tensor": "halo", "bit": 30,
       "skip": 10000, "count": 1}
    ]
  })";
  ipu::FaultPlan plan = ipu::FaultPlan::fromJsonText(planJson);
  Outcome faulted = solveWith(problem, tiles, &plan);

  std::printf("%-18s %-16s %14s %10s %10s\n", "run", "status",
              "rel. residual", "restarts", "rollbacks");
  std::printf("%-18s %-16s %14.3e %10zu %10zu\n", "clean",
              solver::toString(clean.result.status), clean.result.finalResidual,
              clean.result.restarts, clean.result.rollbacks);
  std::printf("%-18s %-16s %14.3e %10zu %10zu\n", "under faults",
              solver::toString(faulted.result.status),
              faulted.result.finalResidual, faulted.result.restarts,
              faulted.result.rollbacks);

  std::printf("\nfault log (%zu events):\n%s",
              faulted.profile.faultEvents.size(),
              ipu::formatFaultEvents(faulted.profile.faultEvents).c_str());
  std::printf(
      "\nEvery injected fault and every recovery action appears above in"
      "\nexecution order; with the same seed the log is reproduced exactly.\n");

  // Scenario 3: a permanent hard fault. Tile 2 dies at superstep 40 of a CG
  // solve; the watchdog confirms it, the session blacklists the tile,
  // repartitions over the survivors and resumes from the migrated iterate.
  std::printf("\n=== hard fault: tile 2 dies mid-solve ===\n");
  auto poisson = matrix::poisson2d5(24, 24);
  solver::SolveSession session({.tiles = tiles});
  session.load(poisson)
      .configure(R"({"type": "cg", "maxIterations": 400, "tolerance": 1e-6,
                     "robustness": {"maxRestarts": 2, "checkpointEvery": 8}})")
      .withFaultPlan(json::parse(R"({
        "seed": 7,
        "faults": [{"type": "tile-dead", "tile": 2, "superstep": 40}]
      })"));
  std::vector<double> rhs(poisson.matrix.rows(), 1.0);
  auto recovered = session.solve(rhs);

  std::printf("status: %s after %zu iterations (rel. residual %.3e)\n",
              solver::toString(recovered.solve.status),
              recovered.solve.iterations, recovered.solve.finalResidual);
  std::printf("blacklisted tiles:");
  for (std::size_t t : session.blacklistedTiles()) std::printf(" %zu", t);
  std::printf("  (remaps: %.0f)\n",
              session.profile().metrics.counter("resilience.remaps"));
  std::printf("\nfault log (%zu events):\n%s",
              session.profile().faultEvents.size(),
              ipu::formatFaultEvents(session.profile().faultEvents).c_str());
  std::printf(
      "\nThe death, its detection (watchdog-trip, health:tile-dead) and the"
      "\nrecovery (recovery:blacklist, recovery:remap) are one ordered"
      "\ntimeline; the solve finishes on the surviving tiles.\n");

  if (!tracePath.empty()) {
    std::ofstream out(tracePath);
    out << support::traceToChromeJson(session.trace()).dump(2) << "\n";
    std::printf("\ntrace timeline written to %s (%zu recovery events)\n",
                tracePath.c_str(), session.trace().recoveryCount());
  }
  return 0;
}
