// (Mixed-Precision) Iterative Refinement (§V-B).
//
// The refinement loop is hardened with checkpoint/rollback: the last good
// extended iterate is kept on the device, and a corrupted residual (NaN/Inf
// or a jump past RobustnessOptions::residualGrowthFactor over the last good
// step) rolls x back and re-refines. Retries are bounded with backoff — each
// consecutive rollback costs double the previous one against a fixed budget,
// so a persistently corrupted loop stops with a typed status instead of
// thrashing.
#include <cmath>

#include "solver/solvers.hpp"
#include "support/trace.hpp"

namespace graphene::solver {

using dsl::Dot;
using dsl::Expression;
using dsl::Tensor;

namespace {

/// Host-side guard state shared between the refinement-loop callbacks.
struct MpirGuardState {
  double lastGoodResidual = -1.0;  // relative norm of the last good step
  std::size_t budgetUsed = 0;      // backoff units consumed so far
  std::size_t nextCost = 1;        // cost of the next rollback (doubles)
};

}  // namespace

void MpirSolver::apply(DistMatrix& a, Tensor& x, Tensor& b) {
  inner_->ensureSetup(a);
  if (robust_.abft) a.enableAbft(robust_.abftTolerance);

  // Extended-precision state (step 1 and 3 operate here).
  Tensor bExt = a.makeVector(extType_, "mpir_b");
  bExt = Expression(b).cast(extType_);
  xExt_ = a.makeVector(extType_, "mpir_x");
  Tensor& xExt = *xExt_;
  {
    // Zero-initialise via a cast of the zeroed working solution.
    x = Expression(0.0f);
    xExt = Expression(x).cast(extType_);
  }
  Tensor rExt = a.makeVector(extType_, "mpir_r");
  Tensor rWork = a.makeVector(DType::Float32, "mpir_rwork");
  Tensor c = a.makeVector(DType::Float32, "mpir_c");

  // ‖b‖² in extended precision for the true relative residual.
  Tensor bNormSq = Tensor(Dot(Expression(bExt), Expression(bExt)));
  Tensor resNormSq = Tensor::scalar(extType_, "mpir_resnormsq");
  resNormSq = Expression(bNormSq);
  Tensor m = Tensor::scalar(DType::Int32, "mpir_m");
  m = Expression(0);

  // Self-healing state: host-controlled abort flag, rollback request flag,
  // and the last good extended iterate (the rollback target).
  Tensor ok = Tensor::scalar(DType::Int32, "mpir_ok");
  ok = Expression(1);
  Tensor rollback = Tensor::scalar(DType::Int32, "mpir_rollback");
  rollback = Expression(0);
  const bool recovery = robust_.maxRollbacks > 0;
  std::optional<Tensor> xGood;
  if (recovery) {
    xGood.emplace(a.makeVector(extType_, "mpir_xgood"));
    *xGood = Expression(xExt);  // x0 = 0 is always a valid rollback point
  }
  stateId_ = recovery ? xGood->id() : xExt.id();

  auto trueHist = trueHistory_;
  auto resPtr = result_;
  auto guard = std::make_shared<MpirGuardState>();
  const RobustnessOptions opts = robust_;
  const double tolerance = tolerance_;
  Solver* innerRaw = inner_.get();
  graph::TensorId resId = resNormSq.id(), bId = bNormSq.id();
  graph::TensorId okId = ok.id(), rollbackId = rollback.id(), mId = m.id();
  graph::TensorId abftId =
      robust_.abft ? a.abftFlagId() : graph::kInvalidTensor;

  dsl::HostCall([resPtr, trueHist, guard](graph::Engine&) {
    *resPtr = SolveResult{};
    resPtr->status = SolveStatus::Running;
    trueHist->clear();
    *guard = MpirGuardState{};
  });

  const double tol2 = tolerance_ * tolerance_;
  Expression keepGoing =
      Expression(m) < static_cast<int>(maxRefinements_) &&
      Expression(resNormSq).cast(DType::Float64) >
          (Expression(bNormSq) * Expression::constant(graph::Scalar(
                                     static_cast<float>(tol2))))
              .cast(DType::Float64);

  dsl::While(keepGoing && Expression(ok) > Expression(0), [&] {
    // Step 1: r(m) = b − A x(m), extended precision.
    a.residualExt(rExt, bExt, xExt);
    resNormSq = Dot(Expression(rExt), Expression(rExt));
    // Guard: decide whether this residual is trustworthy. A corrupted one
    // (NaN/Inf, or growth past residualGrowthFactor over the last good step)
    // schedules a rollback; a clean one is recorded and becomes the new
    // checkpoint.
    dsl::HostCall([trueHist, resPtr, guard, innerRaw, opts, recovery, resId,
                   bId, rollbackId, okId, mId, abftId](graph::Engine& e) {
      const double rr = e.readScalar(resId).toHostDouble();
      const double bb = e.readScalar(bId).toHostDouble();
      const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
      bool abftBad = false;
      if (abftId != graph::kInvalidTensor) {
        const double flag = e.readScalar(abftId).toHostDouble();
        abftBad = !(flag <= opts.abftTolerance);
      }
      const bool corrupted =
          !std::isfinite(rr) || abftBad ||
          (guard->lastGoodResidual >= 0.0 &&
           rel > guard->lastGoodResidual * opts.residualGrowthFactor);
      if (abftBad) {
        e.profile().metrics.addCounter("resilience.abft.mismatches", 1);
        e.profile().faultEvents.push_back(
            {"abft-mismatch", e.profile().computeSupersteps, "mpir",
             static_cast<std::size_t>(e.readScalar(mId).toHostDouble()), -1,
             0.0, "checksum defect above tolerance"});
        e.writeScalar(abftId, graph::Scalar(0.0f));  // re-arm the flag
      }
      if (!corrupted) {
        trueHist->push_back({innerRaw->history().size(), rel});
        resPtr->iterations =
            static_cast<std::size_t>(e.readScalar(mId).toHostDouble());
        resPtr->finalResidual = rel;
        guard->lastGoodResidual = rel;
        guard->nextCost = 1;  // a good step resets the backoff
        support::recordIteration(e.traceSink(), "mpir", resPtr->iterations,
                                 rel, e.simCycles(),
                                 e.profile().computeSupersteps);
        return;
      }
      if (recovery &&
          guard->budgetUsed + guard->nextCost <= opts.maxRollbacks) {
        guard->budgetUsed += guard->nextCost;
        guard->nextCost *= 2;
        ++resPtr->rollbacks;
        e.profile().metrics.addCounter("mpir.rollbacks", 1);
        e.writeScalar(rollbackId, graph::Scalar(std::int32_t(1)));
        // Repair the condition scalar so the While loop survives the NaN
        // (NaN comparisons are false and would end the loop prematurely).
        e.writeScalar(resId, graph::Scalar(static_cast<float>(bb)));
        e.profile().faultEvents.push_back(
            {"recovery:rollback", e.profile().computeSupersteps, "mpir",
             static_cast<std::size_t>(e.readScalar(mId).toHostDouble()), -1,
             0.0,
             !std::isfinite(rr)
                 ? "nan residual; restored last good iterate"
             : abftBad ? "abft mismatch; restored last good iterate"
                       : "residual jumped; restored last good iterate"});
      } else {
        resPtr->status = !std::isfinite(rr) ? SolveStatus::NanDetected
                         : abftBad          ? SolveStatus::CorruptionDetected
                                            : SolveStatus::Diverged;
        resPtr->iterations =
            static_cast<std::size_t>(e.readScalar(mId).toHostDouble());
        e.writeScalar(okId, graph::Scalar(std::int32_t(0)));
      }
    });
    if (recovery) {
      dsl::If(
          Expression(rollback) > Expression(0),
          [&] {
            // Restore the last good iterate and measure its residual afresh
            // — the refinement below then re-refines from known-good state.
            xExt = Expression(*xGood);
            a.residualExt(rExt, bExt, xExt);
            resNormSq = Dot(Expression(rExt), Expression(rExt));
            rollback = Expression(0);
          },
          [&] { *xGood = Expression(xExt); });
    }
    // Step 2: solve A c = r(m) in working precision.
    {
      dsl::Expression narrow = Expression(rExt).cast(DType::Float32);
      narrow.materializeInto(rWork, "extended_precision");
    }
    inner_->apply(a, c, rWork);
    // Step 3: x(m+1) = x(m) + c, extended precision.
    {
      dsl::Expression update =
          Expression(xExt) + Expression(c).cast(extType_);
      update.materializeInto(xExt, "extended_precision");
    }
    m = Expression(m) + 1;
  });

  // Post-loop (ABFT only): the loop's last residual measurement predates
  // its final refinement step, so re-measure b − A·x for the final iterate
  // — the reported status then reflects the x the caller actually gets,
  // and the measurement itself is checksum-guarded.
  if (robust_.abft) {
    a.residualExt(rExt, bExt, xExt);
    resNormSq = Dot(Expression(rExt), Expression(rExt));
  }

  dsl::HostCall([resPtr, resId, bId, mId, abftId, opts,
                 tolerance](graph::Engine& e) {
    if (resPtr->status != SolveStatus::Running) return;
    const double rr = e.readScalar(resId).toHostDouble();
    const double bb = e.readScalar(bId).toHostDouble();
    const double rel = std::sqrt(std::abs(rr) / std::max(bb, 1e-300));
    resPtr->iterations =
        static_cast<std::size_t>(e.readScalar(mId).toHostDouble());
    if (std::isfinite(rel)) resPtr->finalResidual = rel;
    resPtr->status = tolerance > 0.0 && rel <= tolerance
                         ? SolveStatus::Converged
                         : SolveStatus::MaxIterations;
    if (abftId != graph::kInvalidTensor &&
        resPtr->status == SolveStatus::Converged) {
      const double flag = e.readScalar(abftId).toHostDouble();
      if (!(flag <= opts.abftTolerance)) {
        resPtr->status = SolveStatus::CorruptionDetected;
      }
    }
  });

  // The working-precision output is the rounded extended solution.
  x = Expression(xExt).cast(DType::Float32);
}

}  // namespace graphene::solver
